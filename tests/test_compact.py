"""Differential tests: CompactGraph fast kernel vs the reference Graph.

Every hot statistic must agree *exactly* with the object-graph
implementation; these tests pin that with hypothesis over random small
graphs plus the deterministic corpus.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.graphs import components, forests, stars
from repro.graphs.compact import (
    CompactGraph,
    as_compact,
    as_object_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.generators import (
    erdos_renyi,
    erdos_renyi_compact,
    grid_graph,
    grid_graph_compact,
    path_graph_compact,
)

from tests.strategies import deterministic_corpus, small_graphs


# ----------------------------------------------------------------------
# Construction and conversion
# ----------------------------------------------------------------------
class TestConstruction:
    def test_round_trip_preserves_graph(self):
        g = Graph(vertices=range(5), edges=[(0, 1), (1, 2), (3, 4)])
        assert CompactGraph.from_graph(g).to_graph() == g

    def test_round_trip_arbitrary_labels(self):
        g = Graph(vertices=["a", "b", "c"], edges=[("a", "c")])
        cg = CompactGraph.from_graph(g)
        assert cg.labels() == ["a", "b", "c"]
        assert cg.to_graph() == g
        assert cg.index_of("c") == 2
        with pytest.raises(KeyError):
            cg.index_of("z")

    def test_identity_labels_are_implicit(self):
        cg = CompactGraph.from_edges(3, [(0, 1)])
        assert cg.labels() == [0, 1, 2]
        assert cg.label_of(2) == 2
        assert cg.index_of(1) == 1
        with pytest.raises(KeyError):
            cg.index_of(3)

    def test_duplicate_edges_are_merged(self):
        cg = CompactGraph.from_edges(3, [(0, 1), (1, 0), (0, 1)])
        assert cg.number_of_edges() == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            CompactGraph.from_edges(3, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CompactGraph.from_edges(3, [(0, 3)])
        with pytest.raises(ValueError):
            CompactGraph.from_edges(3, [(-1, 0)])

    def test_empty_graph(self):
        cg = CompactGraph.from_edges(0, [])
        assert cg.number_of_vertices() == 0
        assert cg.number_of_edges() == 0
        assert cg.number_of_connected_components() == 0
        assert cg.spanning_forest_size() == 0
        assert cg.star_number() == 0

    def test_neighbors_sorted_and_readonly(self):
        cg = CompactGraph.from_edges(4, [(2, 0), (2, 3), (2, 1)])
        assert cg.neighbors(2).tolist() == [0, 1, 3]
        with pytest.raises(ValueError):
            cg.neighbors(2)[0] = 9

    def test_csr_arrays_are_frozen(self):
        """The memoized kernels rely on immutability, so the exposed CSR
        arrays must reject writes."""
        cg = CompactGraph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            cg.indices[0] = 3
        with pytest.raises(ValueError):
            cg.indptr[0] = 1

    def test_has_edge(self):
        cg = CompactGraph.from_edges(4, [(0, 1), (2, 3)])
        assert cg.has_edge(0, 1) and cg.has_edge(1, 0)
        assert not cg.has_edge(0, 2)

    def test_coercion_helpers(self):
        g = Graph(vertices=range(3), edges=[(0, 2)])
        cg = as_compact(g)
        assert isinstance(cg, CompactGraph)
        assert as_compact(cg) is cg
        assert as_object_graph(g) is g
        assert as_object_graph(cg) == g

    @given(small_graphs())
    def test_round_trip_random(self, g):
        assert CompactGraph.from_graph(g).to_graph() == g


# ----------------------------------------------------------------------
# Differential: components / f_cc / f_sf
# ----------------------------------------------------------------------
class TestComponentsDifferential:
    @given(small_graphs())
    def test_f_cc_and_f_sf_agree(self, g):
        cg = CompactGraph.from_graph(g)
        assert cg.number_of_connected_components() == components.f_cc(g)
        assert cg.spanning_forest_size() == components.f_sf(g)

    @given(small_graphs())
    def test_component_sets_agree(self, g):
        cg = CompactGraph.from_graph(g)
        assert cg.component_sets() == components.connected_components(g)

    @given(small_graphs())
    def test_routing_dispatches(self, g):
        cg = CompactGraph.from_graph(g)
        assert components.f_cc(cg) == components.f_cc(g)
        assert components.f_sf(cg) == components.f_sf(g)
        assert components.is_connected(cg) == components.is_connected(g)
        assert components.connected_components(cg) == components.connected_components(g)

    @given(small_graphs())
    def test_component_of_agrees(self, g):
        cg = CompactGraph.from_graph(g)
        for v in g.vertices():
            assert components.component_of(cg, v) == components.component_of(g, v)

    @pytest.mark.parametrize(
        "name,graph", deterministic_corpus(), ids=lambda x: x if isinstance(x, str) else ""
    )
    def test_corpus_f_cc(self, name, graph):
        cg = CompactGraph.from_graph(graph)
        assert cg.f_cc() == components.f_cc(graph)
        assert cg.f_sf() == components.f_sf(graph)


# ----------------------------------------------------------------------
# Differential: spanning forests
# ----------------------------------------------------------------------
class TestForestsDifferential:
    @given(small_graphs())
    def test_spanning_forest_is_valid(self, g):
        cg = CompactGraph.from_graph(g)
        forest = forests.spanning_forest(cg)
        assert isinstance(forest, CompactGraph)
        assert forest.number_of_edges() == components.f_sf(g)
        assert forests.is_spanning_forest_of(forest, g)

    @given(small_graphs())
    def test_is_forest_agrees(self, g):
        cg = CompactGraph.from_graph(g)
        assert forests.is_forest(cg) == forests.is_forest(g)

    @given(small_graphs())
    def test_leaf_elimination_order_is_valid(self, g):
        cg = CompactGraph.from_graph(g)
        order = forests.leaf_elimination_order(cg)
        assert sorted(order, key=repr) == sorted(g.vertices(), key=repr)

    @given(small_graphs())
    @settings(max_examples=30)
    def test_degree_bounded_forest_agrees(self, g):
        cg = CompactGraph.from_graph(g)
        s = stars.star_number(g)
        for delta in range(0, min(s + 3, 7)):
            result = forests.repair_spanning_forest(cg, delta)
            reference = forests.repair_spanning_forest(g, delta)
            if delta > s:
                # Lemma 1.8: both constructions must succeed.
                assert result.forest is not None
                assert reference.forest is not None
            if result.forest is not None:
                assert forests.is_spanning_forest_of(result.forest, g)
                assert result.forest.max_degree() <= delta
                assert (
                    result.forest.number_of_edges() == components.f_sf(g)
                )
            if result.star is not None:
                center, leaves = result.star
                assert stars.is_induced_star(g, center, leaves)
                assert len(leaves) == delta

    @given(small_graphs())
    @settings(max_examples=25)
    def test_approx_min_degree_on_compact(self, g):
        cg = CompactGraph.from_graph(g)
        forest, delta = forests.approx_min_degree_spanning_forest(cg)
        assert forests.is_spanning_forest_of(forest, g)
        assert forest.max_degree() == delta


# ----------------------------------------------------------------------
# Differential: star numbers
# ----------------------------------------------------------------------
class TestStarsDifferential:
    @given(small_graphs())
    def test_star_number_agrees(self, g):
        cg = CompactGraph.from_graph(g)
        assert cg.star_number() == stars.star_number(g)
        assert stars.star_number(cg) == stars.star_number(g)

    @given(small_graphs())
    def test_bounds_bracket_exact_value(self, g):
        cg = CompactGraph.from_graph(g)
        s = stars.star_number(g)
        assert stars.star_number_lower_bound(cg) <= s
        assert stars.star_number_upper_bound(cg) >= s

    @given(small_graphs())
    @settings(max_examples=30)
    def test_max_induced_star_certificate(self, g):
        cg = CompactGraph.from_graph(g)
        found = stars.find_max_induced_star(cg)
        if g.is_empty():
            assert found is None
        else:
            center, leaves = found
            assert stars.is_induced_star(g, center, tuple(leaves))
            assert len(leaves) == stars.star_number(g)

    @given(small_graphs())
    @settings(max_examples=30)
    def test_independence_number_agrees(self, g):
        cg = CompactGraph.from_graph(g)
        assert stars.independence_number(cg) == stars.independence_number(g)
        mis = stars.max_independent_set(cg)
        # Verify it is an independent set of the right size.
        assert len(mis) == stars.independence_number(g)
        for a in mis:
            for b in mis:
                assert a == b or not g.has_edge(a, b)


# ----------------------------------------------------------------------
# Compact generators
# ----------------------------------------------------------------------
class TestCompactGenerators:
    def test_erdos_renyi_compact_edge_cases(self, rng):
        assert erdos_renyi_compact(0, 0.5, rng).number_of_vertices() == 0
        assert erdos_renyi_compact(1, 0.5, rng).number_of_edges() == 0
        assert erdos_renyi_compact(6, 0.0, rng).number_of_edges() == 0
        assert erdos_renyi_compact(6, 1.0, rng).number_of_edges() == 15

    def test_erdos_renyi_compact_is_simple(self, rng):
        cg = erdos_renyi_compact(60, 0.2, rng)
        u, v = cg.edge_arrays()
        assert (u < v).all()
        pairs = set(zip(u.tolist(), v.tolist()))
        assert len(pairs) == u.size  # no duplicate edges
        assert u.size == cg.number_of_edges()

    def test_erdos_renyi_compact_edge_count_plausible(self, rng):
        n, p = 400, 0.05
        total = n * (n - 1) // 2
        counts = [
            erdos_renyi_compact(n, p, rng).number_of_edges() for _ in range(20)
        ]
        expected = p * total
        std = np.sqrt(total * p * (1 - p))
        assert abs(np.mean(counts) - expected) < 5 * std

    def test_erdos_renyi_compact_matches_reference_statistics(self, rng):
        """Same model: mean f_cc of G(n, c/n) close between generators."""
        n, c, reps = 150, 1.0, 25
        compact_cc = [
            erdos_renyi_compact(n, c / n, rng).f_cc() for _ in range(reps)
        ]
        object_cc = [
            components.f_cc(erdos_renyi(n, c / n, rng)) for _ in range(reps)
        ]
        assert abs(np.mean(compact_cc) - np.mean(object_cc)) < 12

    def test_grid_graph_compact_matches_reference(self):
        for rows, cols in [(1, 1), (1, 5), (3, 4), (5, 2)]:
            assert grid_graph_compact(rows, cols).to_graph() == grid_graph(
                rows, cols
            )

    def test_path_graph_compact(self):
        cg = path_graph_compact(6)
        assert cg.number_of_edges() == 5
        assert cg.f_cc() == 1
        assert path_graph_compact(0).number_of_vertices() == 0
        assert path_graph_compact(1).f_cc() == 1


# ----------------------------------------------------------------------
# Kernel behavior at (moderately) larger scale
# ----------------------------------------------------------------------
class TestModerateScale:
    def test_sparse_random_graph_consistency(self, rng):
        cg = erdos_renyi_compact(5000, 1.5 / 5000, rng)
        g = cg.to_graph()
        assert cg.f_cc() == components.f_cc(g)
        forest = cg.spanning_forest()
        assert forest.number_of_edges() == cg.f_sf()
        assert forests.is_forest(forest)
        assert forest.f_cc() == cg.f_cc()

    def test_component_labels_are_min_indices(self, rng):
        cg = erdos_renyi_compact(500, 2.0 / 500, rng)
        labels = cg.component_labels()
        for part in cg.component_index_sets():
            assert labels[part[0]] == part.min()
            assert (labels[part] == part.min()).all()
