"""Tests for the amortized serving layer (``repro.service``).

Two load-bearing properties:

* correctness — a release answered from a *warm* session (shared
  extension table) is bit-identical to a cold registry release for the
  same RNG stream;
* amortization — content-identical graphs materialized independently
  share one cache entry (fingerprint-keyed), the LRU evicts, and the
  optional shared accountant enforces a session-wide budget.
"""

import json

import numpy as np
import pytest

from repro.estimators import create
from repro.graphs.compact import (
    CompactGraph,
    as_compact,
    forbid_object_coercion,
    object_coercion_count,
)
from repro.graphs.generators import (
    erdos_renyi_compact,
    grid_graph,
    path_graph_compact,
    planted_components_compact,
)
from repro.graphs.io import write_edge_list
from repro.mechanisms.accountant import BudgetExceededError
from repro.service import ReleaseSession, serve_jsonl


@pytest.fixture
def compact():
    return planted_components_compact([12, 9, 6], 0.4, np.random.default_rng(5))


class TestFingerprint:
    def test_deterministic_and_content_addressed(self, compact):
        rebuilt = planted_components_compact(
            [12, 9, 6], 0.4, np.random.default_rng(5)
        )
        assert rebuilt is not compact
        assert rebuilt.fingerprint() == compact.fingerprint()

    def test_distinguishes_graphs(self, compact):
        other = path_graph_compact(27)
        assert other.fingerprint() != compact.fingerprint()

    def test_isolated_vertices_matter(self):
        # f_cc is sensitive to isolated vertices; the fingerprint must
        # be too, even though both graphs have identical edge sets.
        a = CompactGraph.from_edges(3, [(0, 1)])
        b = CompactGraph.from_edges(2, [(0, 1)])
        assert a.fingerprint() != b.fingerprint()

    def test_labels_matter(self):
        a = CompactGraph.from_edges(2, [(0, 1)], labels=["x", "y"])
        b = CompactGraph.from_edges(2, [(0, 1)])
        assert a.fingerprint() != b.fingerprint()

    def test_memoized(self, compact):
        assert compact.fingerprint() is compact.fingerprint()


class TestSessionCache:
    def test_warm_equals_cold_bitwise(self, compact):
        """The acceptance-critical property, at test scale: cached vs
        cold releases are identical for identical RNG streams."""
        session = ReleaseSession()
        session.query("cc", epsilon=1.0, graph=compact, seed=100)  # warm up
        for name, epsilon, seed in [
            ("cc", 1.0, 0),
            ("cc", 0.25, 1),
            ("sf", 2.0, 2),
            ("edge_dp", 0.5, 3),
        ]:
            warm = session.query(name, epsilon=epsilon, graph=compact, seed=seed)
            cold = create(name, epsilon=epsilon, graph=compact).release(
                compact, np.random.default_rng(seed)
            )
            assert warm.value == cold.value, (name, epsilon)

    def test_content_identical_graphs_share_entry(self):
        session = ReleaseSession()
        a = planted_components_compact([10, 10], 0.5, np.random.default_rng(1))
        b = planted_components_compact([10, 10], 0.5, np.random.default_rng(1))
        session.query("cc", epsilon=1.0, graph=a, seed=0)
        session.query("cc", epsilon=1.0, graph=b, seed=1)
        assert len(session) == 1
        assert session.stats.graph_hits == 1
        assert session.stats.graph_misses == 1

    def test_extension_built_once(self, compact):
        session = ReleaseSession()
        session.query("cc", epsilon=1.0, graph=compact, seed=0)
        entry_extension = session.graph_and_extension(compact)[1]
        session.query("sf", epsilon=0.5, graph=compact, seed=1)
        assert session.graph_and_extension(compact)[1] is entry_extension

    def test_zero_coercions_on_compact_path(self, compact):
        session = ReleaseSession()
        before = object_coercion_count()
        with forbid_object_coercion():
            for seed, name in enumerate(("cc", "sf", "cc", "naive_node_dp")):
                session.query(name, epsilon=1.0, graph=compact, seed=seed)
        assert object_coercion_count() == before

    def test_lru_evicts_oldest(self):
        session = ReleaseSession(max_graphs=2)
        graphs = [path_graph_compact(n) for n in (5, 6, 7)]
        for i, g in enumerate(graphs):
            session.query("edge_dp", epsilon=1.0, graph=g, seed=i)
        assert len(session) == 2
        assert session.stats.evictions == 1
        assert graphs[0].fingerprint() not in session.fingerprints()
        assert graphs[2].fingerprint() in session.fingerprints()

    def test_query_by_fingerprint(self, compact):
        session = ReleaseSession()
        fingerprint = session.register(compact)
        release = session.query(
            "cc", epsilon=1.0, fingerprint=fingerprint, seed=3
        )
        cold = create("cc", epsilon=1.0).release(
            compact, np.random.default_rng(3)
        )
        assert release.value == cold.value

    def test_unknown_fingerprint_raises(self):
        session = ReleaseSession()
        with pytest.raises(KeyError, match="register"):
            session.query("cc", epsilon=1.0, fingerprint="f" * 64, seed=0)

    def test_object_graphs_enter_via_compact_conversion(self):
        session = ReleaseSession()
        release = session.query(
            "cc", epsilon=1.0, graph=grid_graph(3, 3), seed=4
        )
        # Served from the compact representation: identical to a cold
        # compact release (PR-3 pins compact == object for int labels).
        cold = create("cc", epsilon=1.0).release(
            as_compact(grid_graph(3, 3)), np.random.default_rng(4)
        )
        assert release.value == cold.value

    def test_session_extension_uses_estimator_default_lp_controls(self):
        """The warm table is built with the Algorithm-1 estimator
        defaults (max_rounds=60 etc.), not the extension-class defaults
        — the precondition for warm == cold on hard inputs."""
        from repro.service.session import DEFAULT_EXTENSION_OPTIONS
        from repro.core.algorithm import PrivateSpanningForestSize

        defaults = PrivateSpanningForestSize(epsilon=1.0)
        assert DEFAULT_EXTENSION_OPTIONS == {
            "use_fast_paths": defaults.use_fast_paths,
            "separation_tolerance": defaults.separation_tolerance,
            "max_rounds": defaults.max_rounds,
        }

    def test_custom_lp_options_served_cold_but_correct(self, compact):
        """An estimator whose LP controls differ from the session's is
        never handed the shared extension: its release matches a cold
        release with those same controls bit for bit."""
        session = ReleaseSession()
        session.query("cc", epsilon=1.0, graph=compact, seed=0)  # warm table
        warm = session.query(
            "sf", epsilon=1.0, graph=compact, seed=7, max_rounds=3
        )
        cold = create("sf", epsilon=1.0, max_rounds=3).release(
            compact, np.random.default_rng(7)
        )
        assert warm.value == cold.value

    def test_rng_xor_seed_required(self, compact):
        session = ReleaseSession()
        with pytest.raises(ValueError, match="exactly one"):
            session.query("cc", epsilon=1.0, graph=compact)
        with pytest.raises(ValueError, match="exactly one"):
            session.query(
                "cc", epsilon=1.0, graph=compact,
                rng=np.random.default_rng(0), seed=1,
            )


class TestSessionBudget:
    def test_budget_enforced_across_queries(self, compact):
        session = ReleaseSession(total_epsilon=1.0)
        session.query("cc", epsilon=0.5, graph=compact, seed=0)
        session.query("sf", epsilon=0.5, graph=compact, seed=1)
        with pytest.raises(BudgetExceededError):
            session.query("cc", epsilon=0.1, graph=compact, seed=2)

    def test_budgeted_session_refuses_non_private_by_default(self, compact):
        """An exact release would sidestep --total-epsilon entirely, so
        a budgeted session refuses it unless explicitly allowed."""
        session = ReleaseSession(total_epsilon=0.5)
        with pytest.raises(ValueError, match="allow_non_private"):
            session.query("non_private", graph=compact, seed=0)
        assert session.accountant.spent() == 0.0

    def test_non_private_is_free_when_opted_in(self, compact):
        session = ReleaseSession(total_epsilon=0.5, allow_non_private=True)
        for seed in range(5):
            session.query("non_private", graph=compact, seed=seed)
        assert session.accountant.spent() == 0.0

    def test_unbudgeted_session_serves_non_private(self, compact):
        release = ReleaseSession().query(
            "non_private", graph=compact, seed=0
        )
        assert release.value == compact.number_of_connected_components()

    def test_ledger_labels_queries(self, compact):
        session = ReleaseSession(total_epsilon=2.0)
        session.query("cc", epsilon=0.75, graph=compact, seed=0)
        ledger = session.accountant.ledger()
        assert len(ledger) == 1
        assert ledger[0][0].startswith("cc@")
        assert ledger[0][1] == 0.75

    def test_unsupported_query_spends_nothing(self, compact):
        """A doomed release must not leak budget: generic_sf refuses the
        27-vertex graph before any epsilon is debited."""
        session = ReleaseSession(total_epsilon=1.0)
        with pytest.raises(ValueError, match="does not support"):
            session.query("generic_sf", epsilon=0.6, graph=compact, seed=0)
        assert session.accountant.spent() == 0.0
        # The full budget is still available for a valid query.
        session.query("cc", epsilon=1.0, graph=compact, seed=1)

    def test_failed_release_spends_nothing(self, compact, monkeypatch):
        """Spend happens after the release succeeds, so an estimator
        that raises mid-release leaves the budget untouched."""
        import repro.service.session as session_module

        class _Exploding:
            name = "edge_dp"
            statistic = "cc"
            uses_extension = False

            def supports(self, graph):
                return True

            def release(self, graph, rng):
                raise RuntimeError("solver blew up")

        monkeypatch.setattr(
            session_module, "create", lambda *a, **k: _Exploding()
        )
        session = ReleaseSession(total_epsilon=1.0)
        with pytest.raises(RuntimeError, match="blew up"):
            session.query("edge_dp", epsilon=0.6, graph=compact, seed=0)
        assert session.accountant.spent() == 0.0


class TestServeJsonl:
    def _request_lines(self, path):
        return [
            json.dumps(
                {"id": "a", "estimator": "cc", "epsilon": 1.0,
                 "graph": path, "seed": 11}
            ),
            "# comment lines and blanks are skipped",
            "",
            json.dumps(
                {"id": "b", "estimator": "sf", "epsilon": 0.5,
                 "graph": path, "seed": 12}
            ),
            json.dumps({"estimator": "unknown_thing", "graph": path}),
        ]

    def test_end_to_end(self, tmp_path, compact):
        path = str(tmp_path / "g.edges")
        write_edge_list(compact, path)
        session = ReleaseSession()
        responses = list(serve_jsonl(self._request_lines(path), session))
        assert [r.get("id") for r in responses] == ["a", "b", 4]
        cold = create("cc", epsilon=1.0).release(
            compact, np.random.default_rng(11)
        )
        assert responses[0]["value"] == cold.value
        assert "true_value" not in responses[0]
        assert responses[0]["fingerprint"] == compact.fingerprint()
        assert "unknown estimator" in responses[2]["error"]
        # One graph, served hot across the batch.
        assert len(session) == 1

    def test_default_graph_and_derived_seeds_reproduce(self, tmp_path, compact):
        session = ReleaseSession()
        lines = [json.dumps({"estimator": "cc", "epsilon": 1.0})] * 2
        first = list(serve_jsonl(lines, session, default_graph=compact))
        second = list(serve_jsonl(lines, session, default_graph=compact))
        # Same base_seed -> same spawned streams -> identical releases;
        # the two requests within a batch draw independently.
        assert [r["value"] for r in first] == [r["value"] for r in second]
        assert first[0]["value"] != first[1]["value"]

    def test_default_graph_survives_lru_eviction(self, tmp_path, compact):
        """Requests without a graph keep working even after a stream of
        other graphs pushed the default out of the LRU."""
        session = ReleaseSession(max_graphs=2)
        session.register(compact)
        lines = []
        for i, n in enumerate((5, 6, 7)):
            path = str(tmp_path / f"g{n}.edges")
            write_edge_list(path_graph_compact(n), path)
            lines.append(
                json.dumps({"estimator": "edge_dp", "epsilon": 1.0,
                            "graph": path, "seed": i})
            )
        lines.append(
            json.dumps({"estimator": "cc", "epsilon": 1.0, "seed": 9})
        )
        responses = list(serve_jsonl(lines, session, default_graph=compact))
        assert all("error" not in r for r in responses), responses
        cold = create("cc", epsilon=1.0).release(
            compact, np.random.default_rng(9)
        )
        assert responses[-1]["value"] == cold.value

    def test_responses_never_leak_pre_noise_values(self, tmp_path, compact):
        """Serving output must contain no noiseless function of the
        private input: true_value AND the exact pre-noise extension
        value are both stripped."""
        session = ReleaseSession()
        lines = [
            json.dumps({"estimator": "sf", "epsilon": 0.5, "seed": 1}),
            json.dumps({"estimator": "cc", "epsilon": 0.5, "seed": 2}),
        ]
        for response in serve_jsonl(lines, session, default_graph=compact):
            assert "true_value" not in response
            assert "extension_value" not in response["metadata"]
        # The experiment-facing serialization still carries both.
        release = session.query("sf", epsilon=0.5, graph=compact, seed=1)
        full = release.to_dict()
        assert full["metadata"]["extension_value"] == pytest.approx(
            release.metadata["extension_value"]
        )
        assert full["true_value"] is not None

    def test_hot_requests_count_one_lookup_each(self, compact):
        """The CLI-reported hit rate reflects one lookup per request,
        not a register+query double count."""
        session = ReleaseSession()
        lines = [
            json.dumps({"estimator": "edge_dp", "epsilon": 1.0, "seed": i})
            for i in range(5)
        ]
        list(serve_jsonl(lines, session, default_graph=compact))
        assert session.stats.graph_misses == 1
        assert session.stats.graph_hits == 4

    def test_named_graph_requests_count_one_lookup_each(
        self, tmp_path, compact
    ):
        """The named-graph path counts one stats event per request too:
        a miss on first load, a hit per hot request."""
        path = str(tmp_path / "g.edges")
        write_edge_list(compact, path)
        session = ReleaseSession()
        lines = [
            json.dumps({"estimator": "edge_dp", "epsilon": 1.0,
                        "graph": path, "seed": i})
            for i in range(3)
        ]
        list(serve_jsonl(lines, session))
        assert session.stats.graph_misses == 1
        assert session.stats.graph_hits == 2

    def test_object_default_graph_compacted_once(self, monkeypatch):
        """A string-labeled (object) default graph is converted to the
        compact representation once per batch, not once per request."""
        import repro.service.batch as batch_module

        calls = {"n": 0}
        original = batch_module.as_compact

        def counting(graph):
            calls["n"] += 1
            return original(graph)

        monkeypatch.setattr(batch_module, "as_compact", counting)
        session = ReleaseSession()
        lines = [
            json.dumps({"estimator": "edge_dp", "epsilon": 1.0, "seed": i})
            for i in range(4)
        ]
        list(serve_jsonl(lines, session, default_graph=grid_graph(3, 3)))
        assert calls["n"] == 1

    def test_missing_graph_errors(self):
        session = ReleaseSession()
        lines = [json.dumps({"estimator": "cc", "epsilon": 1.0})]
        (response,) = serve_jsonl(lines, session)
        assert "no default graph" in response["error"]

    def test_budget_exceeded_is_an_error_line_not_a_crash(
        self, tmp_path, compact
    ):
        path = str(tmp_path / "g.edges")
        write_edge_list(compact, path)
        session = ReleaseSession(total_epsilon=1.0)
        lines = [
            json.dumps({"estimator": "cc", "epsilon": 0.8, "graph": path,
                        "seed": 0}),
            json.dumps({"estimator": "cc", "epsilon": 0.8, "graph": path,
                        "seed": 1}),
        ]
        responses = list(serve_jsonl(lines, session))
        assert "value" in responses[0]
        assert "budget exceeded" in responses[1]["error"]

    def test_malformed_json_is_an_error_line(self):
        session = ReleaseSession()
        (response,) = serve_jsonl(["{not json"], session)
        assert "error" in response
        assert response["error_type"] == "JSONDecodeError"

    def test_batch_continues_past_bad_lines(self, compact):
        """Regression: one malformed line or unknown-estimator request
        must not abort the batch — every line gets its slot."""
        session = ReleaseSession()
        lines = [
            "{malformed",
            json.dumps({"estimator": "definitely_not_registered",
                        "epsilon": 1.0}),
            json.dumps([1, 2, 3]),
            json.dumps({"estimator": "cc", "epsilon": 1.0, "seed": 1}),
            json.dumps({"estimator": "cc", "epsilon": -3.0, "seed": 2}),
            json.dumps({"estimator": "cc", "epsilon": 1.0, "seed": 3}),
        ]
        responses = list(serve_jsonl(lines, session, default_graph=compact))
        assert len(responses) == len(lines)
        assert [("error" in r) for r in responses] == [
            True, True, True, False, True, False,
        ]
        assert all(
            "error_type" in r for r in responses if "error" in r
        )

    def test_estimator_crash_is_an_error_line_not_abort(
        self, compact, monkeypatch
    ):
        """Regression: an exception type nobody anticipated (estimator
        internals blowing up) becomes a structured per-line error, and
        later requests are still served."""
        import repro.service.session as session_module

        real_create = session_module.create

        class _Exploding:
            name = "cc"
            statistic = "cc"
            uses_extension = False

            def supports(self, graph):
                return True

            def release(self, graph, rng):
                raise RuntimeError("separation oracle exploded")

        calls = {"n": 0}

        def flaky_create(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                return _Exploding()
            return real_create(*args, **kwargs)

        monkeypatch.setattr(session_module, "create", flaky_create)
        session = ReleaseSession()
        lines = [
            json.dumps({"estimator": "cc", "epsilon": 1.0, "seed": 0}),
            json.dumps({"estimator": "cc", "epsilon": 1.0, "seed": 1}),
        ]
        responses = list(serve_jsonl(lines, session, default_graph=compact))
        assert responses[0]["error_type"] == "RuntimeError"
        assert "exploded" in responses[0]["error"]
        assert "value" in responses[1]

    def test_responses_carry_no_wall_clock_timing(self, compact):
        """Serving output is a pure function of the request stream:
        the elapsed_seconds diagnostic stays out of it (determinism
        across reruns/worker counts + no timing side channel)."""
        session = ReleaseSession()
        lines = [json.dumps({"estimator": "cc", "epsilon": 1.0, "seed": 1})]
        (response,) = serve_jsonl(lines, session, default_graph=compact)
        assert "elapsed_seconds" not in response
        # The experiment-facing serialization still carries it.
        release = session.query("cc", epsilon=1.0, graph=compact, seed=1)
        assert "elapsed_seconds" in release.to_dict()


class TestSweepSessionReuse:
    def test_runner_worker_session_shares_extensions(
        self, tmp_path, monkeypatch
    ):
        """Grid cells sharing a graph seed reuse one extension table."""
        from repro.experiments.config import GraphGrid, SweepSpec
        from repro.experiments import runner as runner_module
        from repro.experiments.runner import run_sweep
        from repro.experiments.store import ResultStore

        # Fresh per-process session, and capture it across the
        # sweep-scoped teardown so we can inspect its stats.
        runner_module._session = None
        seen = []
        real_reset = runner_module._reset_shared_session

        def capturing_reset():
            if runner_module._session is not None:
                seen.append(runner_module._session)
            real_reset()

        monkeypatch.setattr(
            runner_module, "_reset_shared_session", capturing_reset
        )
        spec = SweepSpec(
            name="session-reuse",
            graphs=(GraphGrid(family="er", sizes=(40,)),),
            epsilons=(0.5, 1.0, 2.0),
            mechanisms=("private_cc",),
            n_trials=3,
        )
        result = run_sweep(spec, ResultStore(tmp_path / "store"))
        assert result.complete
        # The session existed during the sweep and was torn down after.
        assert runner_module._session is None
        (session,) = seen
        # Three epsilon cells, one shared sampled graph: one miss, the
        # rest hits (each trial-release touches the cache once).
        assert session.stats.graph_misses == 1
        assert session.stats.graph_hits >= 2

    def test_sweep_results_identical_with_and_without_session(
        self, tmp_path, monkeypatch
    ):
        from repro.experiments.config import GraphGrid, SweepSpec
        from repro.experiments import runner as runner_module
        from repro.experiments.runner import run_sweep
        from repro.experiments.store import ResultStore

        spec = SweepSpec(
            name="det",
            graphs=(GraphGrid(family="er", sizes=(30,)),),
            epsilons=(1.0, 2.0),
            mechanisms=("private_cc", "sf"),
            n_trials=2,
        )
        runner_module._session = None
        with_session = run_sweep(spec, ResultStore(tmp_path / "a"))
        errors_hot = [r.record["errors"] for r in with_session.results]

        # Cold leg: no shared session, so every cell rebuilds its
        # extension from scratch.
        monkeypatch.setattr(
            runner_module, "_shared_session", lambda *a, **k: None
        )
        cold = run_sweep(spec, ResultStore(tmp_path / "b"))
        errors_cold = [r.record["errors"] for r in cold.results]
        assert errors_hot == errors_cold
        runner_module._session = None


class TestHotPathCost:
    def test_warm_queries_skip_kernel_work(self):
        """After the first query, the per-query cost is GEM + Laplace:
        no fresh extension object is constructed."""
        calls = {"n": 0}
        import repro.service.session as session_module

        original = session_module.extension_for

        def counting(graph, **options):
            calls["n"] += 1
            return original(graph, **options)

        session_module.extension_for = counting
        try:
            session = ReleaseSession()
            g = erdos_renyi_compact(200, 0.01, np.random.default_rng(0))
            for seed in range(6):
                session.query("cc", epsilon=1.0, graph=g, seed=seed)
        finally:
            session_module.extension_for = original
        assert calls["n"] == 1
