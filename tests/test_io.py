"""Tests for edge-list I/O and networkx conversion."""

import io

import networkx as nx
import pytest
from hypothesis import given

from repro.graphs.convert import from_networkx, to_networkx
from repro.graphs.generators import empty_graph, path_graph, star_plus_isolated
from repro.graphs.graph import Graph
from repro.graphs.compact import CompactGraph
from repro.graphs.io import (
    format_edge_list,
    parse_edge_list,
    parse_edge_list_auto,
    read_edge_list,
    read_edge_list_auto,
    write_edge_list,
)

from .strategies import small_graphs


class TestParse:
    def test_edges_and_isolated(self):
        g = parse_edge_list(["# comment", "0 1", "", "2", "1 3"])
        assert g.number_of_vertices() == 4
        assert g.has_edge(0, 1) and g.has_edge(1, 3)
        assert g.degree(2) == 0

    def test_string_labels(self):
        g = parse_edge_list(["alice bob"])
        assert g.has_edge("alice", "bob")

    def test_mixed_labels(self):
        g = parse_edge_list(["1 bob"])
        assert g.has_edge(1, "bob")

    def test_too_many_tokens(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_edge_list(["0 1 2"])


class TestRoundTrip:
    @given(small_graphs())
    def test_format_parse_roundtrip(self, g):
        assert parse_edge_list(format_edge_list(g).splitlines()) == g

    def test_isolated_vertices_survive(self):
        g = star_plus_isolated(2, 3)
        assert parse_edge_list(format_edge_list(g).splitlines()) == g

    def test_file_roundtrip(self, tmp_path):
        g = path_graph(4)
        path = tmp_path / "graph.edges"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_stream_roundtrip(self):
        g = path_graph(3)
        buffer = io.StringIO()
        write_edge_list(g, buffer)
        buffer.seek(0)
        assert read_edge_list(buffer) == g


class TestAutoParse:
    def test_int_labels_give_compact(self):
        g = parse_edge_list_auto(["# c", "0 1", "2", "1 3"])
        assert isinstance(g, CompactGraph)
        assert g.number_of_vertices() == 4
        assert g.has_edge(0, 1) and g.has_edge(1, 3)
        assert g.degree(2) == 0

    def test_string_labels_fall_back_to_object(self):
        g = parse_edge_list_auto(["alice bob", "3"])
        assert isinstance(g, Graph)
        assert g.has_edge("alice", "bob")

    def test_sparse_int_labels_keep_label_table(self):
        g = parse_edge_list_auto(["10 20", "30"])
        assert isinstance(g, CompactGraph)
        assert sorted(g.labels()) == [10, 20, 30]
        assert g.has_edge(g.index_of(10), g.index_of(20))

    def test_too_many_tokens(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_edge_list_auto(["0 1 2"])

    def test_empty(self):
        g = parse_edge_list_auto([])
        assert isinstance(g, CompactGraph)
        assert g.number_of_vertices() == 0

    @given(small_graphs())
    def test_agrees_with_object_parse(self, g):
        text = format_edge_list(g)
        auto = parse_edge_list_auto(text.splitlines())
        reference = parse_edge_list(text.splitlines())
        assert isinstance(auto, CompactGraph)
        assert auto.to_graph() == reference

    def test_file_roundtrip(self, tmp_path):
        g = star_plus_isolated(2, 3)
        path = tmp_path / "graph.edges"
        write_edge_list(g, path)
        auto = read_edge_list_auto(path)
        assert isinstance(auto, CompactGraph)
        assert auto.to_graph() == g


class TestGzip:
    def test_roundtrip_object(self, tmp_path):
        g = star_plus_isolated(3, 2)
        path = tmp_path / "graph.edges.gz"
        write_edge_list(g, path)
        # The file really is gzip, not plain text.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert read_edge_list(path) == g

    def test_roundtrip_auto(self, tmp_path):
        g = path_graph(5)
        path = tmp_path / "graph.edges.gz"
        write_edge_list(g, path)
        auto = read_edge_list_auto(path)
        assert isinstance(auto, CompactGraph)
        assert auto.to_graph() == g


class TestCompactFormat:
    def test_write_compact_matches_object(self, tmp_path):
        g = star_plus_isolated(3, 2)
        compact = CompactGraph.from_graph(g)
        assert parse_edge_list(
            format_edge_list(compact).splitlines()
        ) == g

    def test_compact_roundtrip_with_labels(self):
        g = Graph()
        g.add_edge(10, 30)
        g.add_vertex(20)
        compact = CompactGraph.from_graph(g)
        parsed = parse_edge_list_auto(format_edge_list(compact).splitlines())
        assert isinstance(parsed, CompactGraph)
        assert parsed.to_graph() == g


class TestNetworkxConvert:
    @given(small_graphs())
    def test_roundtrip(self, g):
        assert from_networkx(to_networkx(g)) == g

    def test_self_loops_dropped(self):
        nxg = nx.Graph()
        nxg.add_edge(0, 0)
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.number_of_edges() == 1

    def test_isolated_nodes_kept(self):
        assert to_networkx(empty_graph(3)).number_of_nodes() == 3

    def test_empty(self):
        assert from_networkx(nx.Graph()) == Graph()
