"""Tests for edge-list I/O and networkx conversion."""

import io

import networkx as nx
import pytest
from hypothesis import given

from repro.graphs.convert import from_networkx, to_networkx
from repro.graphs.generators import empty_graph, path_graph, star_plus_isolated
from repro.graphs.graph import Graph
from repro.graphs.io import (
    format_edge_list,
    parse_edge_list,
    read_edge_list,
    write_edge_list,
)

from .strategies import small_graphs


class TestParse:
    def test_edges_and_isolated(self):
        g = parse_edge_list(["# comment", "0 1", "", "2", "1 3"])
        assert g.number_of_vertices() == 4
        assert g.has_edge(0, 1) and g.has_edge(1, 3)
        assert g.degree(2) == 0

    def test_string_labels(self):
        g = parse_edge_list(["alice bob"])
        assert g.has_edge("alice", "bob")

    def test_mixed_labels(self):
        g = parse_edge_list(["1 bob"])
        assert g.has_edge(1, "bob")

    def test_too_many_tokens(self):
        with pytest.raises(ValueError, match="line 1"):
            parse_edge_list(["0 1 2"])


class TestRoundTrip:
    @given(small_graphs())
    def test_format_parse_roundtrip(self, g):
        assert parse_edge_list(format_edge_list(g).splitlines()) == g

    def test_isolated_vertices_survive(self):
        g = star_plus_isolated(2, 3)
        assert parse_edge_list(format_edge_list(g).splitlines()) == g

    def test_file_roundtrip(self, tmp_path):
        g = path_graph(4)
        path = tmp_path / "graph.edges"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

    def test_stream_roundtrip(self):
        g = path_graph(3)
        buffer = io.StringIO()
        write_edge_list(g, buffer)
        buffer.seek(0)
        assert read_edge_list(buffer) == g


class TestNetworkxConvert:
    @given(small_graphs())
    def test_roundtrip(self, g):
        assert from_networkx(to_networkx(g)) == g

    def test_self_loops_dropped(self):
        nxg = nx.Graph()
        nxg.add_edge(0, 0)
        nxg.add_edge(0, 1)
        g = from_networkx(nxg)
        assert g.number_of_edges() == 1

    def test_isolated_nodes_kept(self):
        assert to_networkx(empty_graph(3)).number_of_nodes() == 3

    def test_empty(self):
        assert from_networkx(nx.Graph()) == Graph()
