"""Serving-layer telemetry acceptance tests.

The load-bearing guarantee: turning telemetry on (``--telemetry-log``,
span tracing, metric counters) changes **nothing** about served output —
serve-batch responses are byte-identical with it on or off, serial and
sharded alike.  Plus the ``repro profile`` breakdown: traced stage time
must account for (nearly) the whole release wall time.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.__main__ import main
from repro.graphs.generators import planted_components_compact
from repro.graphs.io import write_edge_list
from repro.storage import read_jsonl_records


@pytest.fixture
def graph_file(tmp_path):
    graph = planted_components_compact(
        [12, 9, 6], 0.4, np.random.default_rng(2)
    )
    path = str(tmp_path / "graph.edges")
    write_edge_list(graph, path)
    return path


@pytest.fixture
def requests_file(tmp_path, graph_file):
    lines = [
        json.dumps({
            "id": i,
            "estimator": ("cc", "sf", "edge_dp")[i % 3],
            "epsilon": 0.5,
            "graph": graph_file,
            "seed": i,
        })
        for i in range(6)
    ]
    lines.append("{malformed")
    path = tmp_path / "requests.jsonl"
    path.write_text("\n".join(lines) + "\n")
    return path


class TestServeBatchByteIdentity:
    def test_serial_output_identical_with_telemetry(
        self, tmp_path, requests_file, capsys
    ):
        off = tmp_path / "off.jsonl"
        on = tmp_path / "on.jsonl"
        assert main([
            "serve-batch", "--requests", str(requests_file),
            "--output", str(off),
        ]) == 0
        assert main([
            "serve-batch", "--requests", str(requests_file),
            "--output", str(on),
            "--telemetry-log", str(tmp_path / "telemetry.jsonl"),
        ]) == 0
        assert off.read_bytes() == on.read_bytes()
        assert not telemetry.enabled()  # tracer uninstalled afterwards

    def test_parallel_output_identical_with_telemetry(
        self, tmp_path, requests_file, capsys
    ):
        off = tmp_path / "off.jsonl"
        on = tmp_path / "on.jsonl"
        assert main([
            "serve-batch", "--requests", str(requests_file),
            "--output", str(off),
        ]) == 0
        assert main([
            "serve-batch", "--requests", str(requests_file),
            "--output", str(on), "--workers", "2",
            "--telemetry-log", str(tmp_path / "telemetry.jsonl"),
        ]) == 0
        assert off.read_bytes() == on.read_bytes()
        # The parallel summary surfaces merged worker telemetry.
        err = capsys.readouterr().err
        assert "worker telemetry: 6 pipeline releases" in err

    def test_serial_log_streams_root_spans_and_metrics(
        self, tmp_path, requests_file
    ):
        log_path = tmp_path / "telemetry.jsonl"
        assert main([
            "serve-batch", "--requests", str(requests_file),
            "--output", str(tmp_path / "out.jsonl"),
            "--telemetry-log", str(log_path),
        ]) == 0
        events = list(read_jsonl_records(log_path))
        spans = [e for e in events if e["event"] == "span"]
        # One root span per successful release, none for the error line.
        assert len(spans) == 6
        assert all(s["name"] == "release" and s["depth"] == 0
                   for s in spans)
        assert {s["attrs"]["estimator"] for s in spans} == {
            "cc", "sf", "edge_dp"
        }
        (metrics,) = [e for e in events if e["event"] == "metrics"]
        assert metrics["served"] == 6
        assert metrics["errors"] == 1
        assert telemetry.counter_value(
            metrics["metrics"], "repro_session_queries_total"
        ) >= 6.0

    def test_parallel_log_merges_worker_registries(
        self, tmp_path, requests_file
    ):
        log_path = tmp_path / "telemetry.jsonl"
        assert main([
            "serve-batch", "--requests", str(requests_file),
            "--output", str(tmp_path / "out.jsonl"), "--workers", "2",
            "--telemetry-log", str(log_path),
        ]) == 0
        (metrics,) = [
            e for e in read_jsonl_records(log_path)
            if e["event"] == "metrics"
        ]
        merged = metrics["metrics"]
        # Worker processes start with zeroed registries, so the merged
        # snapshot counts exactly this batch.
        assert telemetry.counter_value(
            merged, "repro_releases_total"
        ) == 6.0
        assert telemetry.counter_value(
            merged, "repro_session_queries_total"
        ) == 6.0


class TestProfileCli:
    def test_table_breakdown_accounts_for_wall(
        self, graph_file, capsys
    ):
        assert main([
            "profile", graph_file, "--estimator", "cc",
            "--epsilon", "1.0", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "profile of cc release" in out
        # lp.solve is absent when the process-global LP memo is already
        # warm (e.g. earlier tests solved these components); the
        # memo-independent stages must always show.
        for stage in ("gem.select", "laplace.noise", "release",
                      "total traced"):
            assert stage in out

    def test_json_breakdown_within_ten_percent_of_wall(
        self, graph_file, capsys
    ):
        assert main([
            "profile", graph_file, "--estimator", "cc",
            "--epsilon", "1.0", "--seed", "3", "--json",
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["estimator"] == "cc"
        stages = report["stages"]
        assert {"release", "gem.select", "laplace.noise"} <= set(stages)
        stage_total = report["stage_total_seconds"]
        assert stage_total == pytest.approx(
            sum(s["self_seconds"] for s in stages.values())
        )
        # Acceptance criterion: traced stages account for the release
        # wall time to within 10% (the root "release" span brackets the
        # whole pipeline, so only argv/IO overhead can escape).
        assert stage_total <= report["wall_seconds"] * 1.001
        assert stage_total >= report["wall_seconds"] * 0.9

    def test_matches_estimate_value_exactly(self, graph_file, capsys):
        assert main([
            "estimate", graph_file, "--estimator", "cc",
            "--epsilon", "1.0", "--seed", "5", "--json",
        ]) == 0
        estimate = json.loads(capsys.readouterr().out)
        assert main([
            "profile", graph_file, "--estimator", "cc",
            "--epsilon", "1.0", "--seed", "5", "--json",
        ]) == 0
        profiled = json.loads(capsys.readouterr().out)
        # Profiling is observation, not perturbation.
        assert profiled["value"] == estimate["value"]

    def test_unknown_estimator_errors(self, graph_file, capsys):
        assert main([
            "profile", graph_file, "--estimator", "nope",
        ]) == 1
        assert "error" in capsys.readouterr().err


class TestSweepTelemetryLog:
    def test_sweep_streams_spans_and_final_metrics(self, tmp_path):
        spec = {
            "name": "tiny-telemetry",
            "graphs": [{"family": "er", "sizes": [16],
                        "params": {"p": 0.1}}],
            "epsilons": [1.0],
            "mechanisms": ["edge_dp"],
            "replicates": 1,
            "n_trials": 2,
            "base_seed": 9,
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        log_path = tmp_path / "telemetry.jsonl"
        assert main([
            "sweep", "--spec", str(spec_path),
            "--store", str(tmp_path / "store"), "--quiet",
            "--telemetry-log", str(log_path),
        ]) == 0
        assert not telemetry.enabled()
        events = list(read_jsonl_records(log_path))
        kinds = [e["event"] for e in events]
        assert kinds[-1] == "metrics"
        assert "span" in kinds  # in-process releases streamed
        (metrics,) = [e for e in events if e["event"] == "metrics"]
        assert metrics["sweep"] == "tiny-telemetry"
        assert metrics["computed"] == 1
