"""Tests for graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.components import (
    is_connected,
    number_of_connected_components,
)
from repro.graphs.forests import is_forest
from repro.graphs.generators import (
    barabasi_albert,
    caterpillar_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    double_star_graph,
    empty_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    planted_components,
    random_forest,
    random_geometric_graph,
    random_tree,
    star_graph,
    star_of_stars,
    star_plus_isolated,
    stochastic_block_model,
    with_hub,
)
from repro.graphs.stars import star_number


class TestDeterministicFamilies:
    def test_empty(self):
        g = empty_graph(5)
        assert g.number_of_vertices() == 5
        assert g.number_of_edges() == 0

    def test_complete(self):
        g = complete_graph(5)
        assert g.number_of_edges() == 10
        assert g.max_degree() == 4

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(2, 3)
        assert g.number_of_edges() == 6
        assert not g.has_edge(0, 1)  # same side

    def test_path(self):
        g = path_graph(4)
        assert g.number_of_edges() == 3
        assert is_connected(g)

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.number_of_edges() == 5
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_star(self):
        g = star_graph(6)
        assert g.degree(0) == 6
        assert g.number_of_edges() == 6

    def test_double_star(self):
        g = double_star_graph(3, 2)
        assert g.degree(0) == 4 and g.degree(1) == 3

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.number_of_vertices() == 12
        assert g.number_of_edges() == 3 * 3 + 2 * 4
        assert g.max_degree() <= 4

    def test_caterpillar_is_tree(self):
        g = caterpillar_graph(4, 2)
        assert is_forest(g)
        assert is_connected(g)
        assert g.number_of_vertices() == 4 + 8

    def test_star_of_stars(self):
        g = star_of_stars(3, 2)
        assert g.number_of_vertices() == 1 + 3 + 6
        assert g.degree(0) == 3

    def test_star_plus_isolated(self):
        g = star_plus_isolated(3, 5)
        assert g.number_of_vertices() == 9
        assert number_of_connected_components(g) == 6

    def test_with_hub_connects_everything(self):
        g = with_hub(empty_graph(5))
        assert is_connected(g)
        assert g.degree("hub") == 5

    def test_with_hub_preserves_original(self):
        base = empty_graph(3)
        with_hub(base)
        assert base.number_of_vertices() == 3

    def test_disjoint_union(self):
        g = disjoint_union([path_graph(2), path_graph(3)])
        assert g.number_of_vertices() == 5
        assert number_of_connected_components(g) == 2

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            empty_graph(-1)


class TestErdosRenyi:
    def test_p_zero(self, rng):
        g = erdos_renyi(10, 0.0, rng)
        assert g.number_of_edges() == 0

    def test_p_one(self, rng):
        g = erdos_renyi(6, 1.0, rng)
        assert g.number_of_edges() == 15

    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5, rng)

    def test_edge_count_concentrates(self, rng):
        n, p = 60, 0.2
        total_pairs = n * (n - 1) // 2
        counts = [erdos_renyi(n, p, rng).number_of_edges() for _ in range(20)]
        mean = np.mean(counts)
        expected = p * total_pairs
        assert abs(mean - expected) < 4 * np.sqrt(expected)

    def test_reproducible_by_seed(self):
        a = erdos_renyi(30, 0.1, np.random.default_rng(7))
        b = erdos_renyi(30, 0.1, np.random.default_rng(7))
        assert a == b

    def test_sparse_regime_has_many_components(self, rng):
        g = erdos_renyi(200, 1.0 / 200, rng)
        assert number_of_connected_components(g) > 20


class TestRandomGeometric:
    def test_zero_radius_edgeless(self, rng):
        g = random_geometric_graph(20, 0.0, rng)
        assert g.number_of_edges() == 0

    def test_large_radius_complete(self, rng):
        g = random_geometric_graph(10, 1.5, rng)
        assert g.number_of_edges() == 45

    def test_no_induced_six_star(self, rng):
        """Section 1.1.4: geometric graphs have s(G) <= 5."""
        for seed in range(5):
            g = random_geometric_graph(60, 0.2, np.random.default_rng(seed))
            assert star_number(g) <= 5

    def test_positions_returned(self, rng):
        g, pos = random_geometric_graph(15, 0.3, rng, return_positions=True)
        assert pos.shape == (15, 2)
        assert g.number_of_vertices() == 15

    def test_matches_brute_force_adjacency(self, rng):
        """Grid-bucketed edge search agrees with the O(n^2) definition."""
        g, pos = random_geometric_graph(40, 0.25, rng, return_positions=True)
        for i in range(40):
            for j in range(i + 1, 40):
                d = float(np.hypot(*(pos[i] - pos[j])))
                assert g.has_edge(i, j) == (d <= 0.25)


class TestRandomTreesAndForests:
    @given(st.integers(1, 20), st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_random_tree_is_tree(self, n, seed):
        g = random_tree(n, np.random.default_rng(seed))
        assert g.number_of_vertices() == n
        assert is_forest(g)
        assert is_connected(g)

    @given(st.integers(1, 15), st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_random_forest_component_count(self, n, seed):
        rng = np.random.default_rng(seed)
        n_trees = int(rng.integers(1, n + 1))
        g = random_forest(n, n_trees, rng)
        assert g.number_of_vertices() == n
        assert is_forest(g)
        assert number_of_connected_components(g) == n_trees

    def test_random_forest_invalid_tree_count(self, rng):
        with pytest.raises(ValueError):
            random_forest(5, 6, rng)


class TestSBM:
    def test_block_structure(self, rng):
        g = stochastic_block_model([5, 5], [[1.0, 0.0], [0.0, 1.0]], rng)
        assert number_of_connected_components(g) == 2
        assert g.number_of_edges() == 2 * 10

    def test_invalid_matrix_shape(self, rng):
        with pytest.raises(ValueError):
            stochastic_block_model([3, 3], [[0.5]], rng)

    def test_cross_block_only(self, rng):
        g = stochastic_block_model([2, 2], [[0.0, 1.0], [1.0, 0.0]], rng)
        assert g.number_of_edges() == 4


class TestBarabasiAlbert:
    def test_connected_and_sized(self, rng):
        g = barabasi_albert(50, 2, rng)
        assert g.number_of_vertices() == 50
        assert is_connected(g)

    def test_invalid_m(self, rng):
        with pytest.raises(ValueError):
            barabasi_albert(5, 0, rng)
        with pytest.raises(ValueError):
            barabasi_albert(3, 3, rng)

    def test_new_vertices_have_m_edges(self, rng):
        g = barabasi_albert(30, 3, rng)
        assert g.degree(29) == 3


class TestPlantedComponents:
    def test_exact_component_count(self, rng):
        g = planted_components([4, 7, 3, 10], 0.3, rng)
        assert number_of_connected_components(g) == 4
        assert g.number_of_vertices() == 24

    def test_singletons(self, rng):
        g = planted_components([1, 1, 1], 0.5, rng)
        assert number_of_connected_components(g) == 3
        assert g.number_of_edges() == 0
