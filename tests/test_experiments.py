"""Tests for the sweep spec (config) and the content-addressed store."""

import json
import os

import pytest

from repro.experiments.config import (
    GraphGrid,
    SweepSpec,
    load_sweep_spec,
)
from repro.experiments.store import ResultStore, cell_key


def tiny_spec(**overrides) -> SweepSpec:
    base = dict(
        name="tiny",
        graphs=(
            GraphGrid("er", (20, 30), (("c", 1.0),)),
            GraphGrid("grid", (16,)),
        ),
        epsilons=(0.5, 1.0),
        mechanisms=("edge_dp", "non_private"),
        replicates=2,
        n_trials=5,
        base_seed=11,
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestSpecExpansion:
    def test_cell_count_matches_grid(self):
        spec = tiny_spec()
        cells = spec.expand()
        assert len(cells) == spec.cell_count() == 3 * 2 * 2 * 2

    def test_expansion_is_deterministic(self):
        a = tiny_spec().expand()
        b = tiny_spec().expand()
        assert a == b
        assert [c.index for c in a] == list(range(len(a)))

    def test_graph_seed_paired_across_epsilon_and_mechanism(self):
        by_coord = {}
        for cell in tiny_spec().expand():
            coord = (cell.family, cell.n, cell.replicate)
            by_coord.setdefault(coord, set()).add(cell.graph_seed)
        # One sampled graph per (family, size, replicate): every epsilon
        # and mechanism variant shares it.
        assert all(len(seeds) == 1 for seeds in by_coord.values())

    def test_trial_seeds_unique_per_cell(self):
        cells = tiny_spec().expand()
        assert len({c.trial_seed for c in cells}) == len(cells)

    def test_replicates_get_distinct_graphs(self):
        seeds = {
            (c.family, c.n, c.replicate): c.graph_seed
            for c in tiny_spec().expand()
        }
        assert seeds[("er", 20, 0)] != seeds[("er", 20, 1)]

    def test_base_seed_changes_everything(self):
        a = tiny_spec().expand()
        b = tiny_spec(base_seed=12).expand()
        assert all(
            x.graph_seed != y.graph_seed and x.trial_seed != y.trial_seed
            for x, y in zip(a, b)
        )

    def test_index_not_part_of_identity(self):
        cell = tiny_spec().expand()[5]
        assert "index" not in cell.key_dict()


class TestSpecValidation:
    def test_unknown_family(self):
        with pytest.raises(ValueError, match="unknown graph family"):
            GraphGrid("smallworld", (10,))

    def test_unknown_mechanism(self):
        with pytest.raises(ValueError, match="unknown mechanism"):
            tiny_spec(mechanisms=("magic",))

    def test_bad_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            tiny_spec(epsilons=(0.0,))

    def test_bad_replicates(self):
        with pytest.raises(ValueError, match="replicates"):
            tiny_spec(replicates=0)

    def test_no_sizes(self):
        with pytest.raises(ValueError, match="no sizes"):
            GraphGrid("er", ())

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep keys"):
            SweepSpec.from_dict({"name": "x", "graphz": []})


class TestSpecSerialization:
    def test_dict_roundtrip(self):
        spec = tiny_spec()
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_load_json(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert load_sweep_spec(path) == spec

    def test_load_toml(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            "\n".join(
                [
                    'name = "tiny"',
                    "epsilons = [0.5, 1.0]",
                    'mechanisms = ["edge_dp", "non_private"]',
                    "replicates = 2",
                    "n_trials = 5",
                    "base_seed = 11",
                    "[[graphs]]",
                    'family = "er"',
                    "sizes = [20, 30]",
                    "[graphs.params]",
                    "c = 1.0",
                    "[[graphs]]",
                    'family = "grid"',
                    "sizes = [16]",
                ]
            )
        )
        assert load_sweep_spec(path) == tiny_spec()


class TestStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cell = tiny_spec().expand()[0]
        key = cell_key(cell)
        assert key not in store
        record = {"cell": cell.key_dict(), "summary": {"mean_abs_error": 1.5}}
        store.put(key, record)
        assert key in store
        assert store.get(key) == record
        assert len(store) == 1

    def test_no_tmp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cell = tiny_spec().expand()[0]
        store.put(cell_key(cell), {"x": 1})
        leftovers = [
            name
            for _, _, files in os.walk(store.root)
            for name in files
            if not name.endswith(".json")
        ]
        assert leftovers == []

    def test_corrupt_record_treated_as_missing(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cell = tiny_spec().expand()[0]
        key = cell_key(cell)
        store.put(key, {"x": 1})
        with open(store.path_for(key), "w") as handle:
            handle.write("{torn")
        assert store.get(key) is None

    def test_clean_tmp_removes_stale_only(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        shard = os.path.join(store.root, "ab")
        os.makedirs(shard)
        stale = os.path.join(shard, "dead.tmp")
        fresh = os.path.join(shard, "live.tmp")
        for path in (stale, fresh):
            with open(path, "w") as handle:
                handle.write("partial")
        os.utime(stale, (0, 0))
        # A fresh tmp may belong to a concurrent writer: left alone.
        assert store.clean_tmp() == 1
        assert os.listdir(shard) == ["live.tmp"]
        assert store.clean_tmp(max_age_seconds=0.0) == 1
        assert os.listdir(shard) == []

    def test_keys_sorted_and_complete(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        cells = tiny_spec().expand()[:5]
        keys = sorted(cell_key(c) for c in cells)
        for c in cells:
            store.put(cell_key(c), {"i": c.index})
        assert list(store.keys()) == keys


class TestCacheKeys:
    def test_key_stable(self):
        cell = tiny_spec().expand()[0]
        assert cell_key(cell) == cell_key(cell)

    def test_key_changes_with_epsilon(self):
        a = tiny_spec().expand()
        b = tiny_spec(epsilons=(0.7, 1.0)).expand()
        assert cell_key(a[0]) != cell_key(b[0])

    def test_key_changes_with_n_trials(self):
        a = tiny_spec().expand()[0]
        b = tiny_spec(n_trials=6).expand()[0]
        assert cell_key(a) != cell_key(b)

    def test_key_changes_with_version(self):
        cell = tiny_spec().expand()[0]
        assert cell_key(cell, "1.0.0") != cell_key(cell, "1.0.1")

    def test_key_changes_with_base_seed(self):
        a = tiny_spec().expand()[0]
        b = tiny_spec(base_seed=99).expand()[0]
        assert cell_key(a) != cell_key(b)

    def test_key_independent_of_param_value_type(self):
        # (("trees", 5),) built in code and {"trees": 5.0} loaded from
        # JSON are the same grid: identical seeds and store keys.
        int_params = tiny_spec(
            graphs=(GraphGrid("forest", (20,), (("trees", 3),)),)
        ).expand()
        float_params = tiny_spec(
            graphs=(
                GraphGrid.from_dict(
                    {"family": "forest", "sizes": [20], "params": {"trees": 3.0}}
                ),
            )
        ).expand()
        assert [cell_key(c) for c in int_params] == [
            cell_key(c) for c in float_params
        ]

    def test_key_ignores_grid_position(self):
        # The same cell reached through a reordered grid keeps its key:
        # identity is content, not position.
        a = tiny_spec(epsilons=(0.5, 1.0)).expand()
        b = tiny_spec(epsilons=(1.0, 0.5)).expand()
        keys_a = {cell_key(c) for c in a}
        keys_b = {cell_key(c) for c in b}
        assert keys_a == keys_b


class TestEstimatorsField:
    """The registry-era 'estimators' spec key (alias of 'mechanisms')."""

    def test_estimators_key_loads(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps(
                {
                    "name": "registry-era",
                    "graphs": [{"family": "er", "sizes": [20]}],
                    "epsilons": [1.0],
                    "estimators": ["cc", "sf", "edge_dp"],
                }
            )
        )
        spec = load_sweep_spec(path)
        assert spec.mechanisms == ("cc", "sf", "edge_dp")
        assert spec.estimators == ("cc", "sf", "edge_dp")

    def test_both_keys_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            SweepSpec.from_dict(
                {
                    "name": "x",
                    "graphs": [{"family": "er", "sizes": [20]}],
                    "epsilons": [1.0],
                    "estimators": ["cc"],
                    "mechanisms": ["private_cc"],
                }
            )

    def test_registry_names_validate(self):
        # Canonical registry names and legacy aliases both pass.
        tiny_spec(mechanisms=("cc", "sf", "bounded_degree"))
        tiny_spec(mechanisms=("private_cc", "non_private"))

    def test_cell_keys_unchanged_for_legacy_names(self):
        """Stored sweeps survive the registry refactor: a legacy-name
        cell hashes to the same store key as before (the cell identity
        still calls the axis 'mechanism')."""
        spec = tiny_spec(mechanisms=("private_cc",))
        cell = spec.expand()[0]
        assert "mechanism" in cell.key_dict()
        assert cell.key_dict()["mechanism"] == "private_cc"
        assert "estimator" not in cell.key_dict()

    def test_generic_sf_size_cap_rejected_at_load_time(self):
        """A spec that would crash mid-sweep (generic_sf on n > 16) is
        refused when the spec is built, not hours into the run."""
        with pytest.raises(ValueError, match="at most 16"):
            tiny_spec(mechanisms=("generic_sf",))  # sizes 16..30
        # Within the cap it validates fine.
        tiny_spec(
            mechanisms=("generic_sf",),
            graphs=(GraphGrid("er", (10,)),),
        )
