"""Tests for Laplace, exponential mechanism, GEM, and accounting."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mechanisms.accountant import (
    BudgetExceededError,
    PrivacyAccountant,
    split_budget,
)
from repro.mechanisms.exponential import (
    exponential_mechanism,
    exponential_mechanism_probabilities,
)
from repro.mechanisms.gem import (
    generalized_exponential_mechanism,
    power_of_two_grid,
)
from repro.mechanisms.laplace import (
    LaplaceMechanism,
    laplace_noise,
    laplace_tail_probability,
    laplace_tail_quantile,
)


class TestLaplace:
    def test_zero_scale_is_exact(self, rng):
        assert laplace_noise(0.0, rng) == 0.0

    def test_negative_scale_rejected(self, rng):
        with pytest.raises(ValueError):
            laplace_noise(-1.0, rng)

    def test_empirical_mean_and_std(self, rng):
        samples = np.array([laplace_noise(2.0, rng) for _ in range(20_000)])
        assert abs(samples.mean()) < 0.1
        assert abs(samples.std() - 2.0 * math.sqrt(2)) < 0.15

    def test_tail_probability_lemma_2_3(self):
        """Pr[|X| >= t·b] = e^{-t}."""
        assert laplace_tail_probability(1.0, 1.0) == pytest.approx(math.exp(-1))
        assert laplace_tail_probability(2.0, 4.0) == pytest.approx(math.exp(-2))
        assert laplace_tail_probability(1.0, 0.0) == 1.0

    def test_empirical_tail(self, rng):
        scale, t = 1.5, 2.0
        samples = np.abs([laplace_noise(scale, rng) for _ in range(20_000)])
        empirical = float(np.mean(samples >= t * scale))
        assert empirical == pytest.approx(math.exp(-t), abs=0.02)

    def test_quantile_inverts_tail(self):
        scale = 3.0
        for beta in (0.5, 0.1, 0.01):
            t = laplace_tail_quantile(scale, beta)
            assert laplace_tail_probability(scale, t) == pytest.approx(beta)

    def test_quantile_invalid_beta(self):
        with pytest.raises(ValueError):
            laplace_tail_quantile(1.0, 0.0)

    def test_mechanism_scale(self):
        mech = LaplaceMechanism(sensitivity=3.0, epsilon=1.5)
        assert mech.scale == 2.0
        assert mech.expected_absolute_error() == 2.0

    def test_mechanism_release_centering(self, rng):
        mech = LaplaceMechanism(sensitivity=1.0, epsilon=2.0)
        values = [mech.release(10.0, rng) for _ in range(5_000)]
        assert abs(np.mean(values) - 10.0) < 0.1

    def test_mechanism_validation(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(sensitivity=-1.0, epsilon=1.0)
        with pytest.raises(ValueError):
            LaplaceMechanism(sensitivity=1.0, epsilon=0.0)


class TestExponentialMechanism:
    def test_probabilities_normalized(self):
        p = exponential_mechanism_probabilities([1.0, 2.0, 3.0], 1.0, 1.0)
        assert p.sum() == pytest.approx(1.0)
        # minimization: lower score → higher probability
        assert p[0] > p[1] > p[2]

    def test_exact_two_point_distribution(self):
        """p0/p1 = exp(ε(s1−s0)/2)."""
        eps = 1.0
        p = exponential_mechanism_probabilities([0.0, 2.0], 1.0, eps)
        assert p[0] / p[1] == pytest.approx(math.exp(eps * 2.0 / 2.0))

    def test_extreme_scores_stable(self):
        p = exponential_mechanism_probabilities([0.0, 1e6], 1.0, 1.0)
        assert p[0] == pytest.approx(1.0)
        assert np.isfinite(p).all()

    def test_sampling_frequencies(self, rng):
        scores = [0.0, 1.0]
        eps = 2.0
        expected = exponential_mechanism_probabilities(scores, 1.0, eps)
        draws = np.array(
            [exponential_mechanism(scores, 1.0, eps, rng) for _ in range(5_000)]
        )
        freq1 = draws.mean()
        assert freq1 == pytest.approx(expected[1], abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_mechanism_probabilities([], 1.0, 1.0)
        with pytest.raises(ValueError):
            exponential_mechanism_probabilities([1.0], 0.0, 1.0)
        with pytest.raises(ValueError):
            exponential_mechanism_probabilities([1.0], 1.0, -1.0)
        with pytest.raises(ValueError):
            exponential_mechanism_probabilities([float("nan")], 1.0, 1.0)


class TestPowerOfTwoGrid:
    def test_exact_powers(self):
        assert power_of_two_grid(8) == [1, 2, 4, 8]

    def test_non_powers(self):
        assert power_of_two_grid(10) == [1, 2, 4, 8]
        assert power_of_two_grid(1) == [1]
        assert power_of_two_grid(1.5) == [1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            power_of_two_grid(0.5)

    @given(st.integers(1, 10_000))
    def test_covers_and_stays_below(self, delta_max):
        grid = power_of_two_grid(delta_max)
        assert grid[0] == 1
        assert grid[-1] <= delta_max
        assert 2 * grid[-1] > delta_max
        assert all(b == 2 * a for a, b in zip(grid, grid[1:]))


class TestGEM:
    def test_single_candidate(self, rng):
        result = generalized_exponential_mechanism([4], lambda d: d, 1.0, 0.1, rng)
        assert result.selected == 4
        assert result.probabilities == (1.0,)

    def test_picks_clear_winner_with_large_epsilon(self, rng):
        """With a huge privacy budget GEM almost surely selects a
        near-minimal q candidate."""
        candidates = [1, 2, 4, 8, 16]
        q = {1: 100.0, 2: 50.0, 4: 3.0, 8: 8.0, 16: 16.0}
        picks = [
            generalized_exponential_mechanism(
                candidates, q.__getitem__, 1000.0, 0.1, rng
            ).selected
            for _ in range(50)
        ]
        assert all(p == 4 for p in picks)

    def test_theorem_3_5_guarantee_statistically(self, rng):
        """err(Δ̂) ≤ min err(Δ) · O(ln(k/β)) with probability ≥ 1 − β.

        We use the explicit competitive ratio from [RS16b]'s analysis via
        the threshold t: failures are counted against a generous factor.
        """
        candidates = [1, 2, 4, 8, 16, 32]
        q = {1: 40.0, 2: 25.0, 4: 12.0, 8: 9.0, 16: 17.0, 32: 33.0}
        epsilon, beta = 1.0, 0.1
        best = min(q.values())
        k = len(candidates) - 1
        # Proof-level bound: err(selected) ≤ best + t·Δopt·3-ish; use the
        # coarse factor O(ln(k/β))/ε on the optimum.
        factor = 16.0 * math.log(k / beta) / epsilon
        failures = 0
        trials = 200
        for _ in range(trials):
            result = generalized_exponential_mechanism(
                candidates, q.__getitem__, epsilon, beta, rng
            )
            if q[result.selected] > best * factor:
                failures += 1
        assert failures / trials <= beta + 0.05

    def test_diagnostics_shape(self, rng):
        result = generalized_exponential_mechanism(
            [1, 2, 4], lambda d: float(d), 1.0, 0.2, rng
        )
        assert len(result.scores) == 3
        assert len(result.q_values) == 3
        assert sum(result.probabilities) == pytest.approx(1.0)
        assert result.threshold > 0
        # scores: max_j includes j = i so every score >= 0
        assert all(s >= 0 for s in result.scores)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generalized_exponential_mechanism([], lambda d: d, 1.0, 0.1, rng)
        with pytest.raises(ValueError):
            generalized_exponential_mechanism([2, 1], lambda d: d, 1.0, 0.1, rng)
        with pytest.raises(ValueError):
            generalized_exponential_mechanism([1], lambda d: d, 0.0, 0.1, rng)
        with pytest.raises(ValueError):
            generalized_exponential_mechanism([1], lambda d: d, 1.0, 1.5, rng)
        with pytest.raises(ValueError):
            generalized_exponential_mechanism([-1, 1], lambda d: d, 1.0, 0.1, rng)

    def test_score_sensitivity_bound(self, rng):
        """Empirical check of the footnote: replacing the input graph by a
        node-neighbor changes each s_i by at most 1.

        Simulated abstractly: perturb each h_i by at most i (Lipschitz)
        and h by anything; the scores move by ≤ 1.
        """
        candidates = [1.0, 2.0, 4.0, 8.0]
        rng_local = np.random.default_rng(0)
        for _ in range(50):
            gaps = {c: float(rng_local.random() * 10) for c in candidates}
            # Perturbation: each h_i moves by at most i, so each gap
            # (h − h_i treated with h as arbitrary constant shift...) —
            # emulate via gap'_i = gap_i + shift + delta_i, |delta_i| ≤ i.
            shift = float(rng_local.normal() * 100)
            deltas = {c: float(rng_local.uniform(-c, c)) for c in candidates}
            q1 = lambda c: gaps[c] + c  # noqa: E731
            q2 = lambda c: gaps[c] + shift + deltas[c] + c  # noqa: E731
            r1 = generalized_exponential_mechanism(
                candidates, q1, 1.0, 0.1, rng
            )
            r2 = generalized_exponential_mechanism(
                candidates, q2, 1.0, 0.1, rng
            )
            for s1, s2 in zip(r1.scores, r2.scores):
                assert abs(s1 - s2) <= 1.0 + 1e-9


class TestExponentialDistributionSanity:
    def test_probabilities_follow_exact_ratios(self):
        """Every pairwise ratio matches exp(eps * (s_j - s_i) / 2)."""
        scores = [0.0, 0.7, 1.9, 3.0]
        eps, sens = 1.3, 1.0
        p = exponential_mechanism_probabilities(scores, sens, eps)
        for i, si in enumerate(scores):
            for j, sj in enumerate(scores):
                assert p[i] / p[j] == pytest.approx(
                    math.exp(eps * (sj - si) / (2 * sens))
                )

    def test_sensitivity_flattens_distribution(self):
        """Doubling the sensitivity halves the effective epsilon."""
        scores = [0.0, 1.0]
        sharp = exponential_mechanism_probabilities(scores, 1.0, 2.0)
        flat = exponential_mechanism_probabilities(scores, 2.0, 2.0)
        assert sharp[0] > flat[0] > 0.5

    def test_three_candidate_sampling_frequencies(self, rng):
        scores = [0.0, 0.5, 2.0]
        expected = exponential_mechanism_probabilities(scores, 1.0, 2.0)
        draws = np.array(
            [
                exponential_mechanism(scores, 1.0, 2.0, rng)
                for _ in range(6_000)
            ]
        )
        for k in range(3):
            assert float(np.mean(draws == k)) == pytest.approx(
                expected[k], abs=0.03
            )

    def test_gem_selected_always_a_candidate(self, rng):
        candidates = [1, 2, 4, 8]
        for _ in range(20):
            result = generalized_exponential_mechanism(
                candidates, lambda d: float(d % 3), 0.7, 0.2, rng
            )
            assert result.selected in candidates
            assert sum(result.probabilities) == pytest.approx(1.0)
            assert all(p >= 0 for p in result.probabilities)


class TestAccountant:
    def test_spend_and_remaining(self):
        acct = PrivacyAccountant(1.0)
        acct.spend(0.4, "a")
        acct.spend(0.6, "b")
        assert acct.spent() == pytest.approx(1.0)
        assert acct.remaining() == pytest.approx(0.0)
        assert [label for label, _ in acct.ledger()] == ["a", "b"]

    def test_overspend_raises(self):
        acct = PrivacyAccountant(1.0)
        acct.spend(0.9)
        with pytest.raises(BudgetExceededError):
            acct.spend(0.2)

    def test_float_slack_tolerated(self):
        acct = PrivacyAccountant(1.0)
        for _ in range(10):
            acct.spend(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            PrivacyAccountant(0.0)
        acct = PrivacyAccountant(1.0)
        with pytest.raises(ValueError):
            acct.spend(-0.1)

    def test_remaining_tracks_partial_spends(self):
        acct = PrivacyAccountant(2.0)
        assert acct.remaining() == pytest.approx(2.0)
        acct.spend(0.25, "first")
        assert acct.remaining() == pytest.approx(1.75)
        acct.spend(1.0, "second")
        assert acct.remaining() == pytest.approx(0.75)
        assert acct.spent() == pytest.approx(1.25)

    def test_to_dict_and_to_json(self):
        import json as _json

        acct = PrivacyAccountant(1.0)
        acct.spend(0.4, "gem selection")
        acct.spend(0.6, "laplace release")
        state = acct.to_dict()
        assert state["total_epsilon"] == 1.0
        assert state["spent"] == pytest.approx(1.0)
        assert state["ledger"] == [
            {"label": "gem selection", "epsilon": 0.4},
            {"label": "laplace release", "epsilon": 0.6},
        ]
        assert _json.loads(acct.to_json()) == state

    def test_failed_spend_leaves_ledger_unchanged(self):
        acct = PrivacyAccountant(1.0)
        acct.spend(0.7, "ok")
        with pytest.raises(BudgetExceededError):
            acct.spend(0.5, "too much")
        assert acct.spent() == pytest.approx(0.7)
        assert [label for label, _ in acct.ledger()] == ["ok"]
        # The budget freed by the rejection is still spendable.
        acct.spend(0.3, "fits")
        assert acct.remaining() == pytest.approx(0.0)

    def test_exact_budget_exhaustion_then_any_spend_fails(self):
        acct = PrivacyAccountant(1.0)
        acct.spend(1.0)
        with pytest.raises(BudgetExceededError):
            acct.spend(1e-6)

    def test_split_budget(self):
        parts = split_budget(2.0, {"select": 0.5, "noise": 0.5})
        assert parts == {"select": 1.0, "noise": 1.0}

    def test_split_budget_uneven_fractions(self):
        parts = split_budget(4.0, {"a": 0.25, "b": 0.75})
        assert parts == {"a": 1.0, "b": 3.0}
        # The parts fit the accountant exactly.
        acct = PrivacyAccountant(4.0)
        for label, eps in parts.items():
            acct.spend(eps, label)
        assert acct.remaining() == pytest.approx(0.0)

    def test_split_budget_validation(self):
        with pytest.raises(ValueError):
            split_budget(1.0, {"a": 0.5, "b": 0.6})
        with pytest.raises(ValueError):
            split_budget(1.0, {})
        with pytest.raises(ValueError):
            split_budget(0.0, {"a": 1.0})
        with pytest.raises(ValueError):
            split_budget(1.0, {"a": -0.5, "b": 1.5})


class TestAccountantCompensatedSummation:
    """The serving-daemon satellite: long spend streams must neither
    drift past the budget nor spuriously reject in-budget requests."""

    @given(
        total=st.floats(min_value=1e-3, max_value=1e3),
        n=st.integers(min_value=1, max_value=5000),
    )
    def test_n_spends_of_total_over_n_always_fit(self, total, n):
        """N spends of ε/N must all be admitted (no spurious rejection)
        and their exact sum must stay within the advertised budget plus
        the documented 1e-9 relative slack (no drift past it)."""
        acct = PrivacyAccountant(total)
        step = total / n
        for _ in range(n):
            acct.spend(step, "step")  # must never raise
        exact = math.fsum(amount for _, amount in acct.ledger())
        assert exact <= total * (1.0 + 1e-9) + 1e-300
        # The compensated running total agrees with the exact ledger
        # sum to ~1 ulp regardless of stream length.
        assert acct.spent() == pytest.approx(exact, rel=1e-15, abs=0.0)

    def test_long_stream_matches_fsum_exactly_enough(self):
        rng = np.random.default_rng(7)
        amounts = rng.uniform(1e-9, 1e-3, size=20000)
        acct = PrivacyAccountant(float(amounts.sum()) * 2.0)
        for amount in amounts:
            acct.spend(float(amount))
        exact = math.fsum(float(a) for a in amounts)
        assert acct.spent() == pytest.approx(exact, rel=1e-15, abs=0.0)

    def test_naive_drift_scenario_does_not_overadmit(self):
        """0.1 is inexact in binary; 10^5 spends of total/10^5 must not
        let the true composition exceed the budget beyond slack."""
        total = 0.1
        n = 100_000
        acct = PrivacyAccountant(total)
        for _ in range(n):
            acct.spend(total / n)
        assert math.fsum(
            amount for _, amount in acct.ledger()
        ) <= total * (1.0 + 1e-9)
        with pytest.raises(BudgetExceededError):
            acct.spend(total * 1e-6)


class TestAccountantRoundTrip:
    """Durable serialization for the daemon's per-tenant accounts."""

    def test_from_dict_reproduces_state_bit_for_bit(self):
        acct = PrivacyAccountant(2.0)
        acct.spend(0.3, "gem selection")
        acct.spend(0.7, "laplace release")
        clone = PrivacyAccountant.from_dict(acct.to_dict())
        assert clone.total_epsilon == acct.total_epsilon
        assert clone.ledger() == acct.ledger()
        assert clone.spent() == acct.spent()  # bit-identical replay
        assert clone.remaining() == acct.remaining()

    def test_json_round_trip_continues_spending(self):
        acct = PrivacyAccountant(1.0)
        acct.spend(0.5, "before restart")
        clone = PrivacyAccountant.from_json(acct.to_json())
        clone.spend(0.5, "after restart")
        assert clone.remaining() == pytest.approx(0.0)
        with pytest.raises(BudgetExceededError):
            clone.spend(0.1)

    @given(
        total=st.floats(min_value=1e-3, max_value=1e3),
        fractions=st.lists(
            st.floats(min_value=1e-6, max_value=1.0), min_size=0,
            max_size=50,
        ),
    )
    def test_round_trip_spent_is_bit_identical(self, total, fractions):
        acct = PrivacyAccountant(total)
        for i, fraction in enumerate(fractions):
            amount = total * fraction / (2 * max(len(fractions), 1))
            acct.spend(amount, f"s{i}")
        clone = PrivacyAccountant.from_dict(acct.to_dict())
        assert clone.spent() == acct.spent()

    def test_malformed_states_rejected(self):
        with pytest.raises(ValueError):
            PrivacyAccountant.from_dict("not a dict")
        with pytest.raises(ValueError):
            PrivacyAccountant.from_dict({"ledger": []})
        with pytest.raises(ValueError):
            PrivacyAccountant.from_dict(
                {"total_epsilon": 1.0, "ledger": [{"label": "x"}]}
            )
        with pytest.raises(ValueError):
            PrivacyAccountant.from_dict(
                {"total_epsilon": 1.0,
                 "ledger": [{"label": "x", "epsilon": -1.0}]}
            )

    def test_force_spend_skips_admission_for_reconciliation(self):
        acct = PrivacyAccountant(1.0)
        acct.spend(0.9, "real")
        # Replaying an audited spend after a crash must reproduce
        # history even when admission would now refuse it.
        acct.spend(0.3, "audit-reconcile", force=True)
        assert acct.spent() == pytest.approx(1.2)
        assert acct.remaining() == 0.0
        with pytest.raises(ValueError):
            acct.spend(-0.1, force=True)  # validation still applies
