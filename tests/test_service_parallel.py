"""Tests for sharded parallel serving (``serve_jsonl_parallel``).

The acceptance-critical property: for any fixed request stream,
parallel output is **byte-identical** to the serial path — same values
(per-request seeding by global index), same error records, same order.
Workers own disjoint graph shards (routing by fingerprint), so a shared
persistent cache directory sees no cross-process write contention.
"""

import json
import os

import numpy as np
import pytest

from repro.graphs.generators import planted_components_compact
from repro.graphs.io import write_edge_list
from repro.service import ReleaseSession, serve_jsonl, serve_jsonl_parallel
from repro.service.batch import _content_shard, _FingerprintRouter, _shard_of


@pytest.fixture
def graph_files(tmp_path):
    paths = []
    for i, sizes in enumerate(([12, 9], [8, 8, 8], [20], [5, 6, 7])):
        graph = planted_components_compact(
            sizes, 0.4, np.random.default_rng(i)
        )
        path = str(tmp_path / f"g{i}.edges")
        write_edge_list(graph, path)
        paths.append(path)
    return paths


def _request_lines(paths):
    lines = []
    for i in range(10):
        lines.append(json.dumps({
            "estimator": ("cc", "sf", "edge_dp")[i % 3],
            "epsilon": 0.5 + 0.5 * (i % 2),
            "graph": paths[i % len(paths)],
            "seed": i,
        }))
    lines.insert(2, "# comments and blanks are skipped")
    lines.insert(4, "")
    lines.insert(6, "{malformed json")
    lines.append(json.dumps({"estimator": "unknown_thing",
                             "graph": paths[0]}))
    # No seed: exercises the index-derived SeedSequence across shards.
    lines.append(json.dumps({"estimator": "edge_dp", "epsilon": 1.0,
                             "graph": paths[1]}))
    return lines


def _dumps(responses):
    return [json.dumps(r, sort_keys=True) for r in responses]


class TestByteIdentity:
    def test_two_workers_match_serial(self, graph_files, tmp_path):
        lines = _request_lines(graph_files)
        serial = _dumps(serve_jsonl(lines, ReleaseSession(), base_seed=3))
        result = serve_jsonl_parallel(lines, workers=2, base_seed=3)
        assert _dumps(result.responses) == serial
        assert len(result.worker_stats) == 2
        # Every request was served by exactly one worker.
        assert sum(s["queries"] for s in result.worker_stats) + sum(
            1 for r in result.responses if "error" in r
        ) == len(result.responses)

    def test_default_graph_path_matches_serial(
        self, graph_files, tmp_path
    ):
        lines = [
            json.dumps({"estimator": "cc", "epsilon": 1.0}),
            json.dumps({"estimator": "sf", "epsilon": 0.5, "seed": 4}),
        ]
        from repro.graphs.io import read_edge_list_auto

        default = read_edge_list_auto(graph_files[0])
        serial = _dumps(
            serve_jsonl(lines, ReleaseSession(), default_graph=default)
        )
        result = serve_jsonl_parallel(
            lines, workers=2, default_graph_path=graph_files[0]
        )
        assert _dumps(result.responses) == serial

    def test_shared_cache_dir_and_warm_restart(self, graph_files, tmp_path):
        cache_dir = str(tmp_path / "cache")
        lines = _request_lines(graph_files)
        cold = serve_jsonl_parallel(lines, workers=2, cache_dir=cache_dir)
        warm = serve_jsonl_parallel(lines, workers=2, cache_dir=cache_dir)
        assert _dumps(warm.responses) == _dumps(cold.responses)
        assert sum(s["disk_warm_starts"] for s in warm.worker_stats) > 0
        # And a different worker count against the same cache agrees.
        other = serve_jsonl_parallel(lines, workers=3, cache_dir=cache_dir)
        assert _dumps(other.responses) == _dumps(cold.responses)

    def test_merged_metrics_snapshot_counts_the_batch(self, graph_files):
        """Worker registries start zeroed, so the merged telemetry
        snapshot counts exactly the releases this batch served."""
        from repro import telemetry

        lines = _request_lines(graph_files)
        result = serve_jsonl_parallel(lines, workers=2)
        served = sum(1 for r in result.responses if "value" in r)
        assert telemetry.counter_value(
            result.metrics, "repro_releases_total"
        ) == served
        assert telemetry.counter_value(
            result.metrics, "repro_session_queries_total"
        ) == served

    def test_error_records_survive_sharding(self, graph_files):
        lines = _request_lines(graph_files)
        result = serve_jsonl_parallel(lines, workers=2)
        errors = [r for r in result.responses if "error" in r]
        assert len(errors) == 2  # malformed JSON + unknown estimator
        assert all("error_type" in r for r in errors)

    def test_unhashable_graph_value_matches_serial(self, graph_files):
        """Regression: a non-string 'graph' value (e.g. a list) must
        not crash the router — the worker emits the same per-line
        error record the serial path does."""
        lines = [
            json.dumps({"estimator": "cc", "epsilon": 1.0,
                        "graph": ["not", "a", "path"]}),
            json.dumps({"estimator": "cc", "epsilon": 1.0,
                        "graph": {"nested": True}}),
            json.dumps({"estimator": "edge_dp", "epsilon": 1.0,
                        "graph": graph_files[0], "seed": 2}),
        ]
        serial = _dumps(serve_jsonl(lines, ReleaseSession()))
        result = serve_jsonl_parallel(lines, workers=2)
        assert _dumps(result.responses) == serial
        assert "error" in result.responses[0]
        assert "value" in result.responses[2]


class TestRouting:
    def test_routing_is_deterministic_by_content(self, graph_files):
        router_a = _FingerprintRouter(4)
        router_b = _FingerprintRouter(4)
        lines = _request_lines(graph_files)
        shards_a = [router_a.shard_for_line(i, s) for i, s in enumerate(lines)]
        shards_b = [router_b.shard_for_line(i, s) for i, s in enumerate(lines)]
        assert shards_a == shards_b

    def test_same_graph_same_shard(self, graph_files):
        router = _FingerprintRouter(3)
        line = json.dumps({"estimator": "cc", "epsilon": 1.0,
                           "graph": graph_files[0]})
        assert router.shard_for_line(0, line) == router.shard_for_line(7, line)

    def test_shard_of_in_range(self):
        for workers in (1, 2, 3, 8):
            assert 0 <= _shard_of("ab12cd34" * 8, workers) < workers

    def test_unroutable_lines_route_by_content_not_index(self, tmp_path):
        """Regression: the fallback used to be ``index % workers``, so
        the same unresolvable request landed on different workers
        depending on stream position — breaking single-writer cache
        ownership.  Routing must depend on content only."""
        router = _FingerprintRouter(2)
        malformed = "{bad"
        # Same content → same shard at every index.
        assert len({
            router.shard_for_line(i, malformed) for i in (0, 1, 5, 99)
        }) == 1
        missing = json.dumps({"estimator": "cc", "epsilon": 1.0,
                              "graph": str(tmp_path / "nope.edges")})
        assert len({
            router.shard_for_line(i, missing) for i in (0, 1, 5, 99)
        }) == 1
        assert _content_shard(malformed, 2) == router.shard_for_line(
            3, malformed
        )
        # Unreadable paths route by the *path*, so all requests for one
        # path stay on one worker even before the file exists.
        assert _content_shard(str(tmp_path / "nope.edges"), 2) == (
            router.shard_for_line(7, missing)
        )

    def test_unroutable_routing_stable_under_reorder(self, tmp_path):
        """Reordering a stream of unknown-graph lines must not change
        which worker owns each request."""
        router = _FingerprintRouter(3)
        lines = ["{bad json %d" % i for i in range(6)] + [
            json.dumps({"estimator": "cc", "epsilon": 1.0,
                        "graph": str(tmp_path / f"missing{i}.edges")})
            for i in range(6)
        ]
        forward = {line: router.shard_for_line(i, line)
                   for i, line in enumerate(lines)}
        backward = {line: router.shard_for_line(i, line)
                    for i, line in enumerate(reversed(lines))}
        assert forward == backward

    def test_content_shard_in_range_and_distributes(self):
        for workers in (1, 2, 3, 8):
            shards = {_content_shard(f"token-{i}", workers)
                      for i in range(64)}
            assert shards <= set(range(workers))
            if workers > 1:
                assert len(shards) > 1  # not everything on one worker

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            serve_jsonl_parallel([], workers=0)


class TestWorkerCrash:
    def test_sigkilled_worker_surfaces_structured_errors(
        self, graph_files
    ):
        """A worker SIGKILL'd mid-batch must not hang the collector:
        its dispatched-but-unanswered requests come back as structured
        ``WorkerCrashed`` error records and surviving workers' output
        is untouched."""
        lines = _request_lines(graph_files)
        baseline = serve_jsonl_parallel(lines, workers=2)
        # Kill the worker that owns the first routable request, right
        # when it dequeues that request.
        kill_index = next(
            i for i, line in enumerate(lines)
            if line.strip() and not line.lstrip().startswith("#")
        )
        result = serve_jsonl_parallel(
            lines, workers=2, _kill_at_index=kill_index
        )
        assert len(result.responses) == len(baseline.responses)
        crashed = [r for r in result.responses
                   if r.get("error_type") == "WorkerCrashed"]
        assert crashed, "expected WorkerCrashed records for the victim"
        for record in crashed:
            assert "died" in record["error"]
            assert "exit code" in record["error"]
        # Every slot is either the victim's structured crash record or
        # byte-identical to a crash-free run (the survivor's output is
        # untouched).
        for got, want in zip(result.responses, baseline.responses):
            if got.get("error_type") != "WorkerCrashed":
                assert got == want
        # Only the survivor reports stats.
        assert len(result.worker_stats) == 1

    def test_crashed_worker_stats_count_completed_work(self, graph_files):
        """A crashed worker's last stats snapshot (piggybacked on each
        response) still reaches the merged summary, marked crashed —
        operators can see how much work the victim finished."""
        lines = [
            json.dumps({"id": i, "estimator": "cc", "epsilon": 1.0,
                        "graph": graph_files[0], "seed": i})
            for i in range(4)
        ]
        result = serve_jsonl_parallel(lines, workers=1, _kill_at_index=2)
        assert [("value" in r) for r in result.responses] == [
            True, True, False, False,
        ]
        (entry,) = result.worker_stats
        assert entry["crashed"] is True
        assert entry["queries"] == 2  # exactly the delivered responses
        assert entry["worker"] == 0

    def test_crash_free_workers_report_uncrashed_stats(self, graph_files):
        lines = _request_lines(graph_files)
        result = serve_jsonl_parallel(lines, workers=2)
        assert len(result.worker_stats) == 2
        assert all("crashed" not in s for s in result.worker_stats)

    def test_crash_records_carry_request_ids(self, graph_files):
        lines = [
            json.dumps({"id": f"req-{i}", "estimator": "cc",
                        "epsilon": 1.0, "graph": graph_files[0]})
            for i in range(4)
        ]
        result = serve_jsonl_parallel(lines, workers=1, _kill_at_index=0)
        assert all(
            r.get("error_type") == "WorkerCrashed" for r in result.responses
        )
        assert [r["id"] for r in result.responses] == [
            f"req-{i}" for i in range(4)
        ]
        assert result.worker_stats == []


class TestCliParallel:
    def test_workers_flag_byte_identical_and_exit_codes(
        self, graph_files, tmp_path, capsys
    ):
        from repro.__main__ import main

        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "\n".join(_request_lines(graph_files)) + "\n"
        )
        out1 = tmp_path / "w1.jsonl"
        out2 = tmp_path / "w2.jsonl"
        assert main([
            "serve-batch", "--requests", str(requests),
            "--output", str(out1), "--workers", "1",
            "--cache-dir", str(tmp_path / "c1"),
        ]) == 0
        assert main([
            "serve-batch", "--requests", str(requests),
            "--output", str(out2), "--workers", "2",
            "--cache-dir", str(tmp_path / "c2"),
        ]) == 0
        assert out1.read_bytes() == out2.read_bytes()
        assert "across 2 workers" in capsys.readouterr().err

    def test_workers_refuse_total_epsilon(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main([
            "serve-batch", "--requests", os.devnull,
            "--workers", "2", "--total-epsilon", "1.0",
        ]) == 1
        assert "--workers 1" in capsys.readouterr().err
