"""Tests for the shared durable-store primitives (``repro.storage``).

Pins the satellite bugfix contract for ``clean_tmp`` and ``put``:

* another process's cleanup must never unlink a live writer's young
  ``*.tmp`` file (doing so would break that writer's ``os.replace``);
* a failed write — including a failed ``os.fdopen`` or ``os.replace``
  — must not leak a file descriptor or a stray tmp file.
"""

import json
import os
import subprocess
import sys
import tempfile

import pytest

from repro.storage import (
    atomic_write_json,
    clean_stale_tmp,
    read_json_or_none,
    sharded_path,
)

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _run_clean_in_subprocess(root: str, max_age: float) -> int:
    """Run ``clean_stale_tmp`` in a *separate process* (the concurrent
    cleaner of the two-process race) and return its removal count."""
    script = (
        "import sys, json\n"
        f"sys.path.insert(0, {_SRC!r})\n"
        "from repro.storage import clean_stale_tmp\n"
        f"print(json.dumps(clean_stale_tmp({root!r}, {max_age!r})))\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True,
    )
    return json.loads(result.stdout)


class TestTwoProcessCleanRace:
    def test_concurrent_cleaner_spares_live_writer_tmp(self, tmp_path):
        """Process A holds an in-flight .tmp (mid-put); process B's
        cleanup must leave it alone so A's os.replace succeeds."""
        root = str(tmp_path / "store")
        destination = sharded_path(root, "abcd" * 16)
        directory = os.path.dirname(destination)
        os.makedirs(directory)
        # Simulate a writer paused between mkstemp and os.replace.
        fd, live_tmp = tempfile.mkstemp(
            prefix=".abcd-", suffix=".tmp", dir=directory
        )
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write('{"half": ')  # deliberately incomplete

        removed = _run_clean_in_subprocess(root, 3600.0)
        assert removed == 0
        assert os.path.exists(live_tmp)

        # The writer resumes and lands its record atomically.
        os.replace(live_tmp, destination)
        assert read_json_or_none(destination) is None  # torn == missing

    def test_concurrent_cleaner_removes_only_stale(self, tmp_path):
        root = str(tmp_path / "store")
        shard = os.path.join(root, "ab")
        os.makedirs(shard)
        stale = os.path.join(shard, "dead.tmp")
        fresh = os.path.join(shard, "live.tmp")
        for path in (stale, fresh):
            with open(path, "w") as handle:
                handle.write("partial")
        os.utime(stale, (0, 0))
        assert _run_clean_in_subprocess(root, 3600.0) == 1
        assert sorted(os.listdir(shard)) == ["live.tmp"]

    def test_vanishing_file_mid_scan_is_not_an_error(self, tmp_path):
        # A cleaner racing a completing writer sees the tmp disappear:
        # getmtime/unlink OSErrors are swallowed, not raised.
        root = str(tmp_path / "store")
        os.makedirs(os.path.join(root, "ab"))
        assert clean_stale_tmp(root) == 0
        assert clean_stale_tmp(str(tmp_path / "missing-root")) == 0


class TestAtomicWrite:
    def test_roundtrip_and_no_tmp_left(self, tmp_path):
        path = sharded_path(tmp_path, "ff" * 32)
        atomic_write_json(path, {"x": 1})
        assert read_json_or_none(path) == {"x": 1}
        files = [
            name for _, _, names in os.walk(tmp_path) for name in names
        ]
        assert files == [os.path.basename(path)]

    def test_failed_replace_cleans_tmp_and_closes_fd(
        self, tmp_path, monkeypatch
    ):
        """os.replace failing must leave no tmp file and no open fd."""
        path = sharded_path(tmp_path, "aa" * 32)

        real_replace = os.replace
        captured = {}

        def failing_replace(src, dst):
            captured["tmp"] = src
            raise OSError("disk detached")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError, match="disk detached"):
            atomic_write_json(path, {"x": 1})
        monkeypatch.setattr(os, "replace", real_replace)
        assert not os.path.exists(captured["tmp"])
        assert not os.path.exists(path)
        # The fd was closed before replace: closing it again must fail.
        # (We can't capture the numeric fd portably; instead assert the
        # directory holds no stray entries at all.)
        directory = os.path.dirname(path)
        assert os.listdir(directory) == []

    def test_failed_fdopen_closes_raw_fd(self, tmp_path, monkeypatch):
        path = sharded_path(tmp_path, "bb" * 32)
        captured = {}
        real_fdopen = os.fdopen

        def failing_fdopen(fd, *args, **kwargs):
            captured["fd"] = fd
            raise ValueError("bad mode simulation")

        monkeypatch.setattr(os, "fdopen", failing_fdopen)
        with pytest.raises(ValueError, match="bad mode"):
            atomic_write_json(path, {"x": 1})
        monkeypatch.setattr(os, "fdopen", real_fdopen)
        # The raw descriptor was closed on the failure path.
        with pytest.raises(OSError):
            os.close(captured["fd"])
        assert os.listdir(os.path.dirname(path)) == []

    def test_overwrite_is_atomic_swap(self, tmp_path):
        path = sharded_path(tmp_path, "cc" * 32)
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert read_json_or_none(path) == {"v": 2}
