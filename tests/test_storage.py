"""Tests for the shared durable-store primitives (``repro.storage``).

Pins the satellite bugfix contract for ``clean_tmp`` and ``put``:

* another process's cleanup must never unlink a live writer's young
  ``*.tmp`` file (doing so would break that writer's ``os.replace``);
* a failed write — including a failed ``os.fdopen`` or ``os.replace``
  — must not leak a file descriptor or a stray tmp file.
"""

import json
import os
import subprocess
import sys
import tempfile

import pytest

from repro.storage import (
    atomic_write_json,
    clean_stale_tmp,
    read_json_or_none,
    sharded_path,
)

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _run_clean_in_subprocess(root: str, max_age: float) -> int:
    """Run ``clean_stale_tmp`` in a *separate process* (the concurrent
    cleaner of the two-process race) and return its removal count."""
    script = (
        "import sys, json\n"
        f"sys.path.insert(0, {_SRC!r})\n"
        "from repro.storage import clean_stale_tmp\n"
        f"print(json.dumps(clean_stale_tmp({root!r}, {max_age!r})))\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True,
    )
    return json.loads(result.stdout)


class TestTwoProcessCleanRace:
    def test_concurrent_cleaner_spares_live_writer_tmp(self, tmp_path):
        """Process A holds an in-flight .tmp (mid-put); process B's
        cleanup must leave it alone so A's os.replace succeeds."""
        root = str(tmp_path / "store")
        destination = sharded_path(root, "abcd" * 16)
        directory = os.path.dirname(destination)
        os.makedirs(directory)
        # Simulate a writer paused between mkstemp and os.replace.
        fd, live_tmp = tempfile.mkstemp(
            prefix=".abcd-", suffix=".tmp", dir=directory
        )
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write('{"half": ')  # deliberately incomplete

        removed = _run_clean_in_subprocess(root, 3600.0)
        assert removed == 0
        assert os.path.exists(live_tmp)

        # The writer resumes and lands its record atomically.
        os.replace(live_tmp, destination)
        assert read_json_or_none(destination) is None  # torn == missing

    def test_concurrent_cleaner_removes_only_stale(self, tmp_path):
        root = str(tmp_path / "store")
        shard = os.path.join(root, "ab")
        os.makedirs(shard)
        stale = os.path.join(shard, "dead.tmp")
        fresh = os.path.join(shard, "live.tmp")
        for path in (stale, fresh):
            with open(path, "w") as handle:
                handle.write("partial")
        os.utime(stale, (0, 0))
        assert _run_clean_in_subprocess(root, 3600.0) == 1
        assert sorted(os.listdir(shard)) == ["live.tmp"]

    def test_vanishing_file_mid_scan_is_not_an_error(self, tmp_path):
        # A cleaner racing a completing writer sees the tmp disappear:
        # getmtime/unlink OSErrors are swallowed, not raised.
        root = str(tmp_path / "store")
        os.makedirs(os.path.join(root, "ab"))
        assert clean_stale_tmp(root) == 0
        assert clean_stale_tmp(str(tmp_path / "missing-root")) == 0


class TestAtomicWrite:
    def test_roundtrip_and_no_tmp_left(self, tmp_path):
        path = sharded_path(tmp_path, "ff" * 32)
        atomic_write_json(path, {"x": 1})
        assert read_json_or_none(path) == {"x": 1}
        files = [
            name for _, _, names in os.walk(tmp_path) for name in names
        ]
        assert files == [os.path.basename(path)]

    def test_failed_replace_cleans_tmp_and_closes_fd(
        self, tmp_path, monkeypatch
    ):
        """os.replace failing must leave no tmp file and no open fd."""
        path = sharded_path(tmp_path, "aa" * 32)

        real_replace = os.replace
        captured = {}

        def failing_replace(src, dst):
            captured["tmp"] = src
            raise OSError("disk detached")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError, match="disk detached"):
            atomic_write_json(path, {"x": 1})
        monkeypatch.setattr(os, "replace", real_replace)
        assert not os.path.exists(captured["tmp"])
        assert not os.path.exists(path)
        # The fd was closed before replace: closing it again must fail.
        # (We can't capture the numeric fd portably; instead assert the
        # directory holds no stray entries at all.)
        directory = os.path.dirname(path)
        assert os.listdir(directory) == []

    def test_failed_fdopen_closes_raw_fd(self, tmp_path, monkeypatch):
        path = sharded_path(tmp_path, "bb" * 32)
        captured = {}
        real_fdopen = os.fdopen

        def failing_fdopen(fd, *args, **kwargs):
            captured["fd"] = fd
            raise ValueError("bad mode simulation")

        monkeypatch.setattr(os, "fdopen", failing_fdopen)
        with pytest.raises(ValueError, match="bad mode"):
            atomic_write_json(path, {"x": 1})
        monkeypatch.setattr(os, "fdopen", real_fdopen)
        # The raw descriptor was closed on the failure path.
        with pytest.raises(OSError):
            os.close(captured["fd"])
        assert os.listdir(os.path.dirname(path)) == []

    def test_overwrite_is_atomic_swap(self, tmp_path):
        path = sharded_path(tmp_path, "cc" * 32)
        atomic_write_json(path, {"v": 1})
        atomic_write_json(path, {"v": 2})
        assert read_json_or_none(path) == {"v": 2}


class TestJsonlLog:
    """The fsync'd append-only primitive behind the daemon's audit log."""

    def test_append_and_read_back_in_order(self, tmp_path):
        from repro.storage import JsonlLogWriter, read_jsonl_records

        path = tmp_path / "log.jsonl"
        with JsonlLogWriter(path) as writer:
            for i in range(5):
                writer.append({"seq": i, "payload": "x" * i})
        records = list(read_jsonl_records(path))
        assert [r["seq"] for r in records] == list(range(5))

    def test_one_shot_append_and_missing_file(self, tmp_path):
        from repro.storage import append_jsonl, read_jsonl_records

        path = tmp_path / "deep" / "dirs" / "log.jsonl"
        append_jsonl(path, {"a": 1})
        append_jsonl(path, {"b": 2})
        assert list(read_jsonl_records(path)) == [{"a": 1}, {"b": 2}]
        assert list(read_jsonl_records(tmp_path / "nope.jsonl")) == []

    def test_torn_final_line_tolerated(self, tmp_path):
        from repro.storage import append_jsonl, read_jsonl_records

        path = tmp_path / "log.jsonl"
        append_jsonl(path, {"seq": 0})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 1, "pay')  # kill -9 mid-append
        assert list(read_jsonl_records(path)) == [{"seq": 0}]
        # Blank final line (newline landed, payload did not): also torn.
        path2 = tmp_path / "log2.jsonl"
        append_jsonl(path2, {"seq": 0})
        with open(path2, "a", encoding="utf-8") as handle:
            handle.write("\n")
        assert list(read_jsonl_records(path2)) == [{"seq": 0}]

    def test_interior_damage_raises(self, tmp_path):
        from repro.storage import read_jsonl_records

        path = tmp_path / "log.jsonl"
        path.write_text('{"seq": 0}\n{torn interior\n{"seq": 2}\n')
        with pytest.raises(ValueError, match="not the final line"):
            list(read_jsonl_records(path))
        path.write_text('{"seq": 0}\n\n{"seq": 2}\n')
        with pytest.raises(ValueError, match="not the final line"):
            list(read_jsonl_records(path))

    def test_reopen_repairs_torn_tail_before_appending(self, tmp_path):
        """Append-after-crash: a new writer must truncate the torn
        final line, otherwise its first append would concatenate onto
        the fragment — corrupting both records and turning tolerated
        *final*-line damage into fatal *interior* damage on the next
        replay."""
        from repro.storage import (
            JsonlLogWriter,
            append_jsonl,
            read_jsonl_records,
        )

        for torn_tail in ('{"seq": 1, "pay', "\n", '{"whole bad"}\n',
                          '{"a": 1\n\n'):
            path = tmp_path / f"log-{hash(torn_tail) & 0xffff}.jsonl"
            append_jsonl(path, {"seq": 0})
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(torn_tail)  # kill -9 / foreign damage
            writer = JsonlLogWriter(path)
            writer.append({"seq": 1})
            writer.close()
            assert list(read_jsonl_records(path)) == [
                {"seq": 0}, {"seq": 1},
            ], torn_tail

    def test_reopen_of_clean_or_missing_log_touches_nothing(self, tmp_path):
        from repro.storage import JsonlLogWriter, read_jsonl_records

        path = tmp_path / "log.jsonl"
        with JsonlLogWriter(path) as writer:
            writer.append({"seq": 0})
            writer.append({"seq": 1})
        before = path.read_bytes()
        JsonlLogWriter(path).close()  # reopen, no append
        assert path.read_bytes() == before
        assert list(read_jsonl_records(path)) == [{"seq": 0}, {"seq": 1}]
        # A writer on a whole-file fragment truncates to empty.
        torn_only = tmp_path / "torn.jsonl"
        torn_only.write_text('{"never finis')
        with JsonlLogWriter(torn_only) as writer:
            writer.append({"seq": 0})
        assert list(read_jsonl_records(torn_only)) == [{"seq": 0}]

    def test_fsync_called_per_append(self, tmp_path, monkeypatch):
        from repro.storage import JsonlLogWriter

        calls = []
        real_fsync = os.fsync

        def counting_fsync(fd):
            calls.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", counting_fsync)
        with JsonlLogWriter(tmp_path / "log.jsonl") as writer:
            writer.append({"a": 1})
            writer.append({"b": 2})
        assert len(calls) == 2
