"""Shared hypothesis strategies and deterministic graph corpora."""

from __future__ import annotations

import itertools

from hypothesis import strategies as st

from repro.graphs.graph import Graph
from repro.graphs import generators


@st.composite
def small_graphs(draw, min_vertices: int = 1, max_vertices: int = 7) -> Graph:
    """A random labelled graph on at most ``max_vertices`` vertices."""
    n = draw(st.integers(min_vertices, max_vertices))
    pairs = list(itertools.combinations(range(n), 2))
    if pairs:
        edges = draw(
            st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs))
        )
    else:
        edges = []
    return Graph(vertices=range(n), edges=edges)


@st.composite
def small_graphs_with_edge(draw, max_vertices: int = 7) -> Graph:
    """A random graph guaranteed to contain at least one edge."""
    n = draw(st.integers(2, max_vertices))
    pairs = list(itertools.combinations(range(n), 2))
    forced = draw(st.sampled_from(pairs))
    extra = draw(st.lists(st.sampled_from(pairs), unique=True, max_size=len(pairs)))
    edges = set(extra) | {forced}
    return Graph(vertices=range(n), edges=edges)


def deterministic_corpus() -> list[tuple[str, Graph]]:
    """A fixed set of structurally diverse small graphs used across
    parametrized tests (names keep failures readable)."""
    return [
        ("single_vertex", generators.empty_graph(1)),
        ("edgeless_5", generators.empty_graph(5)),
        ("single_edge", Graph(vertices=range(2), edges=[(0, 1)])),
        ("path_6", generators.path_graph(6)),
        ("cycle_5", generators.cycle_graph(5)),
        ("star_4", generators.star_graph(4)),
        ("double_star", generators.double_star_graph(3, 2)),
        ("triangle", generators.complete_graph(3)),
        ("k5", generators.complete_graph(5)),
        ("k23", generators.complete_bipartite_graph(2, 3)),
        ("grid_3x3", generators.grid_graph(3, 3)),
        ("caterpillar", generators.caterpillar_graph(3, 2)),
        ("star_plus_isolated", generators.star_plus_isolated(3, 3)),
        ("star_of_stars", generators.star_of_stars(3, 2)),
        ("two_triangles", generators.disjoint_union(
            [generators.complete_graph(3), generators.complete_graph(3)]
        )),
    ]
