"""Tests for the durable multi-tenant release daemon (``repro serve``).

Covers the three durable layers (accounts, audit log, daemon app) plus
the acceptance criterion end-to-end: ``kill -9`` mid-stream, restart,
per-tenant ε preserved exactly, over-budget requests rejected with a
structured error, and audit-replay totals matching every account's
ledger.
"""

import json
import math
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.graphs.generators import planted_components_compact
from repro.graphs.io import write_edge_list
from repro.mechanisms.accountant import PrivacyAccountant
from repro.service.daemon import (
    AccountExistsError,
    AccountStore,
    AuditLog,
    InvalidTenantError,
    ReleaseDaemon,
    replay_audit,
)
from repro.service.daemon.accounts import validate_tenant
from repro.service.daemon.audit import AuditRecordError

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


@pytest.fixture
def graph_file(tmp_path):
    graph = planted_components_compact(
        [10, 8], 0.4, np.random.default_rng(5)
    )
    path = str(tmp_path / "graph.edges")
    write_edge_list(graph, path)
    return path


def _http(method, url, body=None, timeout=30.0):
    """Tiny JSON-over-HTTP client: returns ``(status, decoded_body)``
    for success *and* error responses alike."""
    data = None if body is None else json.dumps(body).encode()
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestTenantValidation:
    def test_safe_names_accepted(self):
        for name in ("acme", "a", "T-1", "org.unit_7", "0leading-digit"):
            assert validate_tenant(name) == name

    def test_unsafe_names_rejected(self):
        bad = ["", ".hidden", "../escape", "a/b", "a\\b", "a b",
               "x" * 65, None, 7, "-dash-first"]
        for name in bad:
            with pytest.raises(InvalidTenantError):
                validate_tenant(name)


class TestAccountStore:
    def test_create_get_and_durability(self, tmp_path):
        store = AccountStore(tmp_path / "accounts")
        account = store.create("acme", 2.0)
        account.accountant.spend(0.5, "first")
        store.save(account)
        # A brand-new store over the same directory (fresh process
        # after a restart) sees the spend exactly.
        reopened = AccountStore(tmp_path / "accounts")
        loaded = reopened.get("acme")
        assert loaded is not None
        assert loaded.accountant.spent() == account.accountant.spent()
        assert loaded.accountant.ledger() == account.accountant.ledger()
        assert reopened.tenants() == ["acme"]

    def test_create_twice_refused(self, tmp_path):
        store = AccountStore(tmp_path)
        store.create("acme", 1.0)
        with pytest.raises(AccountExistsError):
            store.create("acme", 5.0)

    def test_get_or_create_respects_default(self, tmp_path):
        store = AccountStore(tmp_path)
        assert store.get_or_create("ghost", None) is None
        account = store.get_or_create("auto", 3.0)
        assert account is not None
        assert account.accountant.total_epsilon == 3.0
        # Second sighting returns the same account, not a reset one.
        account.accountant.spend(1.0)
        store.save(account)
        again = store.get_or_create("auto", 3.0)
        assert again.accountant.spent() == pytest.approx(1.0)

    def test_reconcile_heals_audit_gap(self, tmp_path):
        store = AccountStore(tmp_path)
        account = store.create("acme", 2.0)
        account.accountant.spend(0.5, "landed")
        store.save(account)
        # Audit says 0.9 was released but only 0.5 landed in the
        # account (crash between audit append and account write).
        healed = store.reconcile_with_audit({"acme": 0.9})
        assert healed == {"acme": pytest.approx(0.4)}
        assert store.get("acme").accountant.spent() == pytest.approx(0.9)
        labels = [label for label, _ in store.get("acme").accountant.ledger()]
        assert "audit-reconcile" in labels
        # Idempotent: a second reconcile with the same totals heals
        # nothing more.
        assert store.reconcile_with_audit({"acme": 0.9}) == {}

    def test_reconcile_ignores_unknown_and_in_sync(self, tmp_path):
        store = AccountStore(tmp_path)
        account = store.create("acme", 1.0)
        account.accountant.spend(0.25)
        store.save(account)
        healed = store.reconcile_with_audit(
            {"acme": 0.25, "never-provisioned": 9.0}
        )
        assert healed == {}


class TestAuditLog:
    def test_append_replay_and_seq_continuation(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(path)
        assert log.next_seq == 0
        for i, (tenant, eps) in enumerate(
            [("a", 0.5), ("b", 1.0), ("a", 0.25)]
        ):
            seq = log.allocate_seq()
            assert seq == i
            log.append_release(
                tenant=tenant, request_id=f"r{i}", estimator="cc",
                epsilon=eps, fingerprint="f" * 64, seq=seq,
            )
        log.close()

        summary = replay_audit(path)
        assert summary.records == 3
        assert summary.last_seq == 2
        assert summary.epsilon_by_tenant["a"] == pytest.approx(0.75)
        assert summary.releases_by_tenant == {"a": 2, "b": 1}

        # Reopening continues the sequence where it left off.
        reopened = AuditLog(path)
        assert reopened.next_seq == 3
        reopened.close()

    def test_allocate_does_not_advance(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl")
        assert log.allocate_seq() == log.allocate_seq() == 0
        log.close()

    def test_out_of_order_seq_refused(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl")
        with pytest.raises(ValueError, match="out of order"):
            log.append_release(
                tenant="a", request_id=0, estimator="cc",
                epsilon=0.5, fingerprint=None, seq=7,
            )
        log.close()

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(path)
        log.append_release(
            tenant="a", request_id=0, estimator="cc",
            epsilon=0.5, fingerprint=None, seq=0,
        )
        log.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "release", "seq": 1, "ten')  # kill -9
        summary = replay_audit(path)
        assert summary.records == 1
        assert summary.epsilon_by_tenant == {"a": pytest.approx(0.5)}
        # And the log stays appendable: the next writer truncates the
        # torn fragment and continues from the last *complete* record.
        reopened = AuditLog(path)
        assert reopened.next_seq == 1
        reopened.append_release(
            tenant="a", request_id=1, estimator="cc",
            epsilon=0.25, fingerprint=None, seq=1,
        )
        reopened.close()
        summary = replay_audit(path)
        assert summary.records == 2
        assert summary.epsilon_by_tenant == {"a": pytest.approx(0.75)}

    def test_interior_damage_raises(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        path.write_text('{"torn interior\n{"kind": "release", "seq": 0, '
                        '"tenant": "a", "epsilon": 0.5, '
                        '"estimator": "cc"}\n')
        with pytest.raises(ValueError):
            replay_audit(path)

    def test_malformed_record_raises(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        path.write_text('{"kind": "release", "seq": 0, "tenant": "a", '
                        '"epsilon": -2.0, "estimator": "cc"}\n')
        with pytest.raises(AuditRecordError):
            replay_audit(path)

    def test_missing_file_is_empty_history(self, tmp_path):
        summary = replay_audit(tmp_path / "never-written.jsonl")
        assert summary.records == 0
        assert summary.last_seq == -1


class TestDaemonHttp:
    """End-to-end over a real socket via ``start_in_background``."""

    def test_health_estimators_and_stats(self, tmp_path):
        daemon = ReleaseDaemon(tmp_path / "state")
        with daemon.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"
            status, body = _http("GET", f"{base}/healthz")
            assert status == 200 and body["status"] == "ok"
            status, body = _http("GET", f"{base}/v1/estimators")
            assert status == 200
            names = {spec["name"] for spec in body["estimators"]}
            assert {"cc", "sf", "edge_dp"} <= names
            status, body = _http("GET", f"{base}/v1/stats")
            assert status == 200
            assert body["releases_served"] == 0
            status, body = _http("GET", f"{base}/nope")
            assert status == 404 and body["error"]["code"] == "not_found"

    def test_tenant_provisioning(self, tmp_path):
        daemon = ReleaseDaemon(tmp_path / "state")
        with daemon.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"
            status, body = _http(
                "PUT", f"{base}/v1/tenants/acme", {"total_epsilon": 2.0}
            )
            assert status == 201
            assert body["total_epsilon"] == 2.0 and body["spent"] == 0.0
            status, body = _http(
                "PUT", f"{base}/v1/tenants/acme", {"total_epsilon": 9.0}
            )
            assert status == 409
            assert body["error"]["code"] == "account_exists"
            status, body = _http("GET", f"{base}/v1/tenants/acme")
            assert status == 200 and body["remaining"] == 2.0
            status, body = _http("GET", f"{base}/v1/tenants/ghost")
            assert status == 404
            assert body["error"]["code"] == "unknown_tenant"
            status, body = _http(
                "PUT", f"{base}/v1/tenants/..escape",
                {"total_epsilon": 1.0},
            )
            assert status == 400
            assert body["error"]["code"] == "invalid_tenant"
            status, body = _http(
                "PUT", f"{base}/v1/tenants/bad", {"total_epsilon": -1}
            )
            assert status == 400
            assert body["error"]["code"] == "malformed_request"

    def test_release_admission_and_budget_flow(self, tmp_path, graph_file):
        daemon = ReleaseDaemon(
            tmp_path / "state", default_tenant_budget=2.0
        )
        with daemon.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"
            release = {"tenant": "acme", "estimator": "cc",
                       "epsilon": 1.0, "graph": graph_file, "seed": 1}
            status, first = _http("POST", f"{base}/v1/release", release)
            assert status == 200
            assert first["tenant"] == "acme" and first["seq"] == 0
            assert "value" in first
            assert first["budget"]["remaining"] == pytest.approx(1.0)

            status, second = _http("POST", f"{base}/v1/release", release)
            assert status == 200
            assert second["budget"]["remaining"] == pytest.approx(0.0)

            # Third request: structured over-budget rejection, no crash.
            status, rejected = _http("POST", f"{base}/v1/release", release)
            assert status == 429
            assert rejected["error"]["code"] == "over_budget"
            assert rejected["budget"]["spent"] == pytest.approx(2.0)

            # The daemon is still healthy and the audit matches.
            status, audit = _http("GET", f"{base}/v1/audit/summary")
            assert status == 200
            assert audit["tenants"]["acme"] == {
                "epsilon": pytest.approx(2.0), "releases": 2,
            }

    def test_structured_rejections(self, tmp_path, graph_file):
        daemon = ReleaseDaemon(
            tmp_path / "state", default_tenant_budget=1.0
        )
        with daemon.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"
            url = f"{base}/v1/release"
            cases = [
                ({"estimator": "cc", "epsilon": 1.0},
                 400, "invalid_tenant"),          # missing tenant
                ({"tenant": "t", "epsilon": 1.0},
                 400, "malformed_request"),       # missing estimator
                ({"tenant": "t", "estimator": "nope", "epsilon": 1.0},
                 404, "unknown_estimator"),
                ({"tenant": "t", "estimator": "cc"},
                 400, "malformed_request"),       # missing epsilon
                ({"tenant": "t", "estimator": "cc", "epsilon": -3},
                 400, "malformed_request"),
                ({"tenant": "t", "estimator": "non_private",
                  "graph": graph_file},
                 403, "non_private_refused"),
                ({"tenant": "t", "estimator": "cc", "epsilon": 0.5,
                  "graph": str(graph_file) + ".missing"},
                 400, "invalid_request"),
            ]
            for body, want_status, want_code in cases:
                status, response = _http("POST", url, body)
                assert (status, response["error"]["code"]) == (
                    want_status, want_code
                ), body
            # Undecodable body: structured 400, connection survives.
            request = urllib.request.Request(
                url, data=b"{not json", method="POST"
            )
            try:
                with urllib.request.urlopen(request, timeout=30.0) as resp:
                    status, body = resp.status, json.loads(resp.read())
            except urllib.error.HTTPError as exc:
                status, body = exc.code, json.loads(exc.read())
            assert status == 400
            assert body["error"]["code"] == "malformed_request"
            status, body = _http("GET", f"{base}/healthz")
            assert status == 200

    def test_unknown_tenant_without_default_budget(
        self, tmp_path, graph_file
    ):
        daemon = ReleaseDaemon(tmp_path / "state")  # no default budget
        with daemon.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"
            status, body = _http("POST", f"{base}/v1/release", {
                "tenant": "drifter", "estimator": "cc",
                "epsilon": 0.5, "graph": graph_file,
            })
            assert status == 404
            assert body["error"]["code"] == "unknown_tenant"
            assert "PUT /v1/tenants/drifter" in body["error"]["message"]

    def test_restart_preserves_budgets_exactly(self, tmp_path, graph_file):
        state = tmp_path / "state"
        release = {"tenant": "acme", "estimator": "sf",
                   "epsilon": 0.75, "graph": graph_file, "seed": 9}
        daemon = ReleaseDaemon(state, default_tenant_budget=2.0)
        with daemon.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"
            status, first = _http("POST", f"{base}/v1/release", release)
            assert status == 200
            status, before = _http("GET", f"{base}/v1/tenants/acme")
            assert status == 200

        # Fresh daemon over the same state dir — a restart.
        daemon2 = ReleaseDaemon(state, default_tenant_budget=2.0)
        assert daemon2.healed_at_startup == {}  # clean shutdown: no gap
        with daemon2.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"
            status, after = _http("GET", f"{base}/v1/tenants/acme")
            assert status == 200
            assert after["spent"] == before["spent"]  # bit-exact
            assert after["remaining"] == before["remaining"]
            # Audit sequence continues, no renumbering.
            status, reply = _http("POST", f"{base}/v1/release", release)
            assert status == 200
            assert reply["seq"] == 1
            assert reply["budget"]["spent"] == pytest.approx(1.5)

    def test_startup_heals_audit_account_gap(self, tmp_path, graph_file):
        """Simulated kill -9 between audit append and account write:
        the next startup force-spends the audited ε into the account."""
        state = tmp_path / "state"
        daemon = ReleaseDaemon(state, default_tenant_budget=2.0)
        with daemon.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"
            status, _ = _http("POST", f"{base}/v1/release", {
                "tenant": "acme", "estimator": "cc", "epsilon": 0.5,
                "graph": graph_file, "seed": 1,
            })
            assert status == 200

        # Rewind the *account* to its pre-spend state (what disk looks
        # like when the crash lands after the audit fsync but before
        # the account write).
        store = AccountStore(state / "accounts")
        account = store.get("acme")
        rewound = PrivacyAccountant(account.accountant.total_epsilon)
        account.accountant = rewound
        store.save(account)

        daemon2 = ReleaseDaemon(state, default_tenant_budget=2.0)
        assert daemon2.healed_at_startup == {"acme": pytest.approx(0.5)}
        healed = daemon2.accounts.get("acme").accountant
        assert healed.spent() == pytest.approx(0.5)
        assert [label for label, _ in healed.ledger()] == [
            "audit-reconcile"
        ]
        daemon2.close()


@pytest.mark.slow
class TestKillNineAcceptance:
    """The ISSUE acceptance criterion, against the real CLI process."""

    def _start(self, state, graph_file, tmp_path):
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            _SRC if not existing else _SRC + os.pathsep + existing
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--state-dir", str(state), "--port", "0",
             "--tenant-budget", "2.0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, text=True, cwd=str(tmp_path),
        )
        # The CLI prints one parseable line once the socket listens.
        deadline = time.time() + 60.0
        line = ""
        while time.time() < deadline:
            line = process.stdout.readline()
            if "listening on" in line:
                break
        else:
            process.kill()
            pytest.fail(f"daemon never announced a port: {line!r}")
        address = line.split("http://", 1)[1].split()[0]
        port = int(address.rsplit(":", 1)[1].strip("/"))
        return process, f"http://127.0.0.1:{port}"

    def test_kill_nine_midstream_preserves_epsilon(
        self, tmp_path, graph_file
    ):
        state = tmp_path / "state"
        process, base = self._start(state, graph_file, tmp_path)
        try:
            release = {"tenant": "acme", "estimator": "cc",
                       "epsilon": 0.5, "graph": graph_file}
            for seed in (1, 2):
                status, body = _http(
                    "POST", f"{base}/v1/release",
                    {**release, "seed": seed},
                )
                assert status == 200, body
            status, account = _http("GET", f"{base}/v1/tenants/acme")
            assert status == 200
            assert account["spent"] == pytest.approx(1.0)
        finally:
            # kill -9 mid-stream: no atexit, no flush, no goodbye.
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30.0)

        # Restart over the same state dir.
        process, base = self._start(state, graph_file, tmp_path)
        try:
            # Per-tenant ε preserved exactly.
            status, account = _http("GET", f"{base}/v1/tenants/acme")
            assert status == 200
            assert account["spent"] == pytest.approx(1.0)
            assert account["remaining"] == pytest.approx(1.0)
            assert account["releases"] == 2

            # Audit replay: one record per successful release, totals
            # matching the account ledger.
            status, audit = _http("GET", f"{base}/v1/audit/summary")
            assert status == 200
            assert audit["records"] == 2
            assert audit["tenants"]["acme"]["releases"] == 2
            assert audit["tenants"]["acme"]["epsilon"] == pytest.approx(
                account["spent"]
            )

            # Next over-budget request: structured rejection, not a
            # crash.
            status, rejected = _http("POST", f"{base}/v1/release", {
                "tenant": "acme", "estimator": "cc", "epsilon": 1.5,
                "graph": graph_file, "seed": 3,
            })
            assert status == 429
            assert rejected["error"]["code"] == "over_budget"

            # An in-budget request still succeeds after the restart.
            status, ok = _http("POST", f"{base}/v1/release", {
                "tenant": "acme", "estimator": "cc", "epsilon": 1.0,
                "graph": graph_file, "seed": 4,
            })
            assert status == 200
            assert ok["budget"]["remaining"] == pytest.approx(0.0)
            assert ok["seq"] == 2  # sequence resumed, not reset

            # Cross-check on disk: audit fsum equals the account's
            # compensated ledger sum for every tenant.
            summary = replay_audit(state / "audit.jsonl")
            store = AccountStore(state / "accounts")
            for tenant, total in summary.epsilon_by_tenant.items():
                ledger = store.get(tenant).accountant.ledger()
                assert math.fsum(a for _, a in ledger) == pytest.approx(
                    total, rel=1e-12
                )
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30.0)


class TestDaemonTelemetry:
    """``GET /metrics`` + ``GET /healthz`` probes + monotonic uptime."""

    def _http_text(self, url):
        with urllib.request.urlopen(url, timeout=30.0) as response:
            return (
                response.status,
                response.headers.get("Content-Type"),
                response.read().decode("utf-8"),
            )

    def test_metrics_exposition_after_release(self, tmp_path, graph_file):
        daemon = ReleaseDaemon(
            tmp_path / "state", default_tenant_budget=5.0
        )
        with daemon.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"
            for seed in (1, 2):
                status, _ = _http("POST", f"{base}/v1/release", {
                    "tenant": "tel-acme", "estimator": "cc",
                    "epsilon": 0.5, "graph": graph_file, "seed": seed,
                })
                assert status == 200
            status, content_type, text = self._http_text(f"{base}/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        lines = text.splitlines()
        # Per-tenant release counter and epsilon spend (tenant name is
        # unique to this test, so exact values hold even though the
        # registry is process-global).
        assert 'repro_daemon_releases_total{tenant="tel-acme"} 2' in lines
        assert 'repro_daemon_requests_total{tenant="tel-acme"} 2' in lines
        assert 'repro_daemon_epsilon_spent_total{tenant="tel-acme"} 1' \
            in lines
        # Latency histogram: cumulative buckets ending at +Inf == count.
        assert 'repro_daemon_request_seconds_bucket' \
            '{tenant="tel-acme",le="+Inf"} 2' in lines
        assert 'repro_daemon_request_seconds_count{tenant="tel-acme"} 2' \
            in lines
        assert "# TYPE repro_daemon_request_seconds histogram" in lines
        assert "# TYPE repro_daemon_releases_total counter" in lines

    def test_metrics_rejects_non_get(self, tmp_path):
        daemon = ReleaseDaemon(tmp_path / "state")
        with daemon.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"
            status, body = _http("POST", f"{base}/metrics", {})
            assert status == 405
            assert body["error"]["code"] == "method_not_allowed"

    def test_error_code_counters(self, tmp_path):
        daemon = ReleaseDaemon(tmp_path / "state")
        with daemon.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"
            before = _http("GET", f"{base}/nope")  # not_found
            assert before[0] == 404
            _, _, text = self._http_text(f"{base}/metrics")
        for line in text.splitlines():
            if line.startswith('repro_daemon_errors_total{code="not_found"}'):
                assert int(line.rsplit(" ", 1)[1]) >= 1
                break
        else:
            raise AssertionError("not_found error counter missing")

    def test_healthz_reports_probe_checks(self, tmp_path):
        daemon = ReleaseDaemon(tmp_path / "state")
        with daemon.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"
            status, body = _http("GET", f"{base}/healthz")
            assert status == 200
            assert body["status"] == "ok"
            assert body["checks"] == {
                "audit_log": "ok", "account_store": "ok",
            }
            assert body["uptime_seconds"] >= 0.0

    def test_healthz_degrades_when_audit_log_unwritable(self, tmp_path):
        daemon = ReleaseDaemon(tmp_path / "state")
        with daemon.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"
            # Simulate a wedged audit log (e.g. disk pulled out from
            # under the daemon): the writer can no longer append.
            daemon.audit._writer.close()
            status, body = _http("GET", f"{base}/healthz")
            assert status == 503
            assert body["status"] == "degraded"
            assert "closed" in body["checks"]["audit_log"]
            assert body["checks"]["account_store"] == "ok"

    def test_uptime_uses_monotonic_clock(self, tmp_path, monkeypatch):
        """Regression: uptime was ``time.time() - started_at``, so an
        NTP step made it jump or go negative.  It must track the
        monotonic clock only."""
        from types import SimpleNamespace

        import repro.service.daemon.app as app_module

        clock = {"mono": 500.0, "wall": 1_700_000_000.0}
        monkeypatch.setattr(app_module, "time", SimpleNamespace(
            monotonic=lambda: clock["mono"],
            time=lambda: clock["wall"],
            perf_counter=time.perf_counter,
        ))
        daemon = ReleaseDaemon(tmp_path / "state")
        clock["mono"] += 7.5
        clock["wall"] -= 3600.0  # wall clock steps an hour backward
        assert daemon.uptime() == pytest.approx(7.5)

    def test_telemetry_log_records_releases(self, tmp_path, graph_file):
        from repro.storage import read_jsonl_records

        log_path = tmp_path / "telemetry.jsonl"
        daemon = ReleaseDaemon(
            tmp_path / "state", default_tenant_budget=5.0,
            telemetry_log_path=str(log_path),
        )
        with daemon.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"
            status, body = _http("POST", f"{base}/v1/release", {
                "tenant": "acme", "estimator": "cc", "epsilon": 0.5,
                "graph": graph_file, "seed": 1,
            })
            assert status == 200
        events = list(read_jsonl_records(log_path))
        kinds = [e["event"] for e in events]
        assert "release" in kinds
        release = next(e for e in events if e["event"] == "release")
        assert release["tenant"] == "acme"
        assert release["estimator"] == "cc"
        assert release["epsilon"] == 0.5
        assert release["seconds"] > 0.0
        assert release["seq"] == body["seq"]
        # Shutdown flushes a final metrics snapshot.
        assert kinds[-1] == "metrics"
