"""Tests for Algorithm 1: the private f_sf and f_cc estimators."""

import numpy as np
import pytest

from repro.core.algorithm import (
    PrivateConnectedComponents,
    PrivateSpanningForestSize,
    default_failure_probability,
)
from repro.core.bounds import theorem_1_3_bound
from repro.graphs.components import (
    spanning_forest_size,
)
from repro.graphs.forests import approx_min_degree_spanning_forest
from repro.graphs.generators import (
    empty_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    planted_components,
    random_forest,
    star_graph,
    star_plus_isolated,
)
from repro.graphs.graph import Graph


class TestDefaultFailureProbability:
    def test_small_n_clamped(self):
        assert 0 < default_failure_probability(1) <= 0.5
        assert 0 < default_failure_probability(10) <= 0.5

    def test_decreases_in_n(self):
        assert default_failure_probability(10**6) < default_failure_probability(100)

    def test_matches_formula_for_large_n(self):
        import math

        n = 10**8
        assert default_failure_probability(n) == pytest.approx(
            1.0 / math.log(math.log(n))
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            default_failure_probability(-1)


class TestPrivateSpanningForestSize:
    def test_release_structure(self, rng):
        g = grid_graph(4, 4)
        est = PrivateSpanningForestSize(epsilon=2.0)
        release = est.release(g, rng)
        assert release.true_value == 15
        assert release.delta_hat in release.gem.candidates
        assert release.epsilon_select + release.epsilon_noise == pytest.approx(2.0)
        assert release.noise_scale == pytest.approx(
            release.delta_hat / release.epsilon_noise
        )
        assert release.error == pytest.approx(release.value - 15)

    def test_forest_input_low_error(self, rng):
        """On a low-degree forest the extension is exact at small Δ, so a
        large-ε release should track f_sf closely."""
        g = random_forest(60, 12, rng)
        truth = spanning_forest_size(g)
        est = PrivateSpanningForestSize(epsilon=5.0)
        errors = [abs(est.release(g, rng).value - truth) for _ in range(10)]
        _, delta_star_ub = approx_min_degree_spanning_forest(g)
        bound = theorem_1_3_bound(60, 5.0, delta_star_ub)
        assert np.median(errors) <= bound

    def test_empty_graph_rejected(self, rng):
        est = PrivateSpanningForestSize(epsilon=1.0)
        with pytest.raises(ValueError):
            est.release(Graph(), rng)

    def test_edgeless_graph(self, rng):
        g = empty_graph(10)
        est = PrivateSpanningForestSize(epsilon=2.0)
        release = est.release(g, rng)
        assert release.true_value == 0
        assert release.extension_value == 0.0

    def test_custom_delta_max(self, rng):
        g = path_graph(20)
        est = PrivateSpanningForestSize(epsilon=1.0, delta_max=4)
        release = est.release(g, rng)
        assert max(release.gem.candidates) <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            PrivateSpanningForestSize(epsilon=0.0)
        with pytest.raises(ValueError):
            PrivateSpanningForestSize(epsilon=1.0, select_fraction=1.0)
        with pytest.raises(ValueError):
            PrivateSpanningForestSize(epsilon=1.0, beta=2.0)

    def test_reproducible_with_seed(self):
        g = grid_graph(3, 3)
        est = PrivateSpanningForestSize(epsilon=1.0)
        a = est.release(g, np.random.default_rng(42)).value
        b = est.release(g, np.random.default_rng(42)).value
        assert a == b

    def test_noise_distribution_centered_on_extension(self, rng):
        g = star_graph(4)
        est = PrivateSpanningForestSize(epsilon=4.0, beta=0.1)
        releases = [est.release(g, rng) for _ in range(300)]
        # Group by selected delta; released values average to f_delta.
        by_delta: dict[float, list[float]] = {}
        for r in releases:
            by_delta.setdefault(r.delta_hat, []).append(r.value - r.extension_value)
        for delta, noises in by_delta.items():
            if len(noises) > 50:
                scale = delta / 2.0  # epsilon_noise = 2.0
                assert abs(np.mean(noises)) < 5 * scale / np.sqrt(len(noises)) + 0.3


class TestPrivateConnectedComponents:
    def test_release_structure(self, rng):
        g = planted_components([10, 10, 10], 0.3, rng)
        est = PrivateConnectedComponents(epsilon=2.0)
        release = est.release(g, rng)
        assert release.true_value == 3
        assert release.value == pytest.approx(
            release.vertex_count_estimate - release.spanning_forest.value
        )
        assert release.rounded_value >= 0

    def test_budget_split(self, rng):
        est = PrivateConnectedComponents(epsilon=1.0, count_fraction=0.25)
        g = path_graph(5)
        release = est.release(g, rng)
        assert release.epsilon_count == pytest.approx(0.25)
        sf = release.spanning_forest
        assert sf.epsilon_select + sf.epsilon_noise == pytest.approx(0.75)

    def test_equation_1_consistency(self, rng):
        g = star_plus_isolated(3, 10)
        est = PrivateConnectedComponents(epsilon=3.0)
        release = est.release(g, rng)
        assert release.error == pytest.approx(release.value - 11)

    def test_accuracy_on_many_components(self, rng):
        """Forest of many small trees: the hard case for naive node-DP,
        the easy case for the paper's algorithm."""
        g = random_forest(80, 20, rng)
        est = PrivateConnectedComponents(epsilon=5.0)
        errors = [abs(est.release(g, rng).error) for _ in range(10)]
        assert np.median(errors) < 25  # naive node-DP noise would be ~16n

    def test_validation(self):
        with pytest.raises(ValueError):
            PrivateConnectedComponents(epsilon=-1.0)
        with pytest.raises(ValueError):
            PrivateConnectedComponents(epsilon=1.0, count_fraction=0.0)

    def test_empty_graph_rejected(self, rng):
        with pytest.raises(ValueError):
            PrivateConnectedComponents(epsilon=1.0).release(Graph(), rng)

    def test_rounded_value_nonnegative(self, rng):
        g = empty_graph(1)
        est = PrivateConnectedComponents(epsilon=0.5)
        for _ in range(20):
            assert est.release(g, rng).rounded_value >= 0


class TestEndToEndAccuracy:
    """Statistical sanity: with a healthy budget, error stays within the
    Theorem 1.3 envelope on structured inputs."""

    @pytest.mark.parametrize(
        "make_graph,delta_star_hint",
        [
            (lambda rng: grid_graph(6, 6), 3),
            (lambda rng: random_forest(50, 10, rng), 4),
            (lambda rng: erdos_renyi(60, 1.5 / 60, rng), None),
        ],
    )
    def test_within_theoretical_envelope(self, rng, make_graph, delta_star_hint):
        g = make_graph(rng)
        epsilon = 4.0
        est = PrivateSpanningForestSize(epsilon=epsilon)
        truth = spanning_forest_size(g)
        if delta_star_hint is None:
            _, delta_star_hint = approx_min_degree_spanning_forest(g)
        bound = theorem_1_3_bound(g.number_of_vertices(), epsilon, delta_star_hint)
        errors = [abs(est.release(g, rng).value - truth) for _ in range(8)]
        assert np.median(errors) <= bound
