"""Tests for connected components, f_cc, f_sf (cross-checked vs networkx)."""

import networkx as nx
import pytest
from hypothesis import given

from repro.graphs.components import (
    bfs_tree_edges,
    component_of,
    connected_components,
    f_cc,
    f_sf,
    is_connected,
    number_of_connected_components,
    spanning_forest_size,
)
from repro.graphs.convert import to_networkx
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    disjoint_union,
    empty_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph

from .strategies import deterministic_corpus, small_graphs


class TestComponents:
    def test_empty_graph(self):
        assert connected_components(Graph()) == []
        assert number_of_connected_components(Graph()) == 0

    def test_edgeless(self):
        g = empty_graph(4)
        assert number_of_connected_components(g) == 4
        assert spanning_forest_size(g) == 0

    def test_path_is_one_component(self):
        g = path_graph(5)
        assert number_of_connected_components(g) == 1
        assert spanning_forest_size(g) == 4

    def test_disjoint_union_counts_add(self):
        g = disjoint_union([path_graph(3), cycle_graph(4), empty_graph(2)])
        assert number_of_connected_components(g) == 4
        assert spanning_forest_size(g) == 2 + 4 - 1

    def test_component_of(self):
        g = disjoint_union([complete_graph(3), complete_graph(2)])
        comp = component_of(g, (0, 1))
        assert comp == {(0, 0), (0, 1), (0, 2)}

    def test_component_of_missing_vertex(self):
        with pytest.raises(KeyError):
            component_of(Graph(), 0)

    def test_equation_1(self):
        """f_cc(G) = |V(G)| - f_sf(G), Equation (1)."""
        for name, g in deterministic_corpus():
            assert f_cc(g) == g.number_of_vertices() - f_sf(g), name


class TestIsConnected:
    def test_empty_is_connected(self):
        assert is_connected(Graph())

    def test_singleton_is_connected(self):
        assert is_connected(empty_graph(1))

    def test_star_connected(self):
        assert is_connected(star_graph(5))

    def test_two_parts_not_connected(self):
        assert not is_connected(empty_graph(2))


class TestBFSTree:
    def test_edge_count_is_fsf(self):
        for name, g in deterministic_corpus():
            assert len(bfs_tree_edges(g)) == f_sf(g), name

    def test_edges_belong_to_graph(self):
        g = cycle_graph(6)
        for u, v in bfs_tree_edges(g):
            assert g.has_edge(u, v)

    def test_custom_roots(self):
        g = disjoint_union([path_graph(2), path_graph(2)])
        edges = bfs_tree_edges(g, roots=[(1, 0)])
        assert len(edges) == 2  # still spans both components


class TestAgainstNetworkx:
    @given(small_graphs(max_vertices=8))
    def test_component_count_matches(self, g):
        expected = nx.number_connected_components(to_networkx(g))
        assert number_of_connected_components(g) == expected

    @given(small_graphs(max_vertices=8))
    def test_components_match(self, g):
        ours = sorted(sorted(c) for c in connected_components(g))
        theirs = sorted(sorted(c) for c in nx.connected_components(to_networkx(g)))
        assert ours == theirs
