"""Registry-declared generic estimators: kstar, deg_hist, and the
statistic/poset machinery behind them.

The load-bearing property is *bit-identity*: a registry estimator must
release exactly the same value on a :class:`CompactGraph` as on the
object-graph reference for a shared seed (every statistic, DS, and
extension value is an exact integer in either representation, so the
RNG consumption matches step for step).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.down_sensitivity import (
    PosetTables,
    down_sensitivity_brute_force,
    generic_lipschitz_extension,
)
from repro.estimators import create, estimator_names, get_spec
from repro.graphs.compact import as_compact, forbid_object_coercion
from repro.graphs.degree_stats import (
    degree_histogram,
    high_degree_count,
    kstar_count,
    kstar_down_sensitivity,
    kstar_down_sensitivity_bound,
)
from repro.graphs import generators

from .strategies import deterministic_corpus, small_graphs

CORPUS = deterministic_corpus()


# ---------------------------------------------------------------------------
# degree statistics


class TestKstar:
    @pytest.mark.parametrize("name,graph", CORPUS, ids=[n for n, _ in CORPUS])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_count_matches_definition(self, name, graph, k):
        expected = sum(
            math.comb(graph.degree(v), k) for v in graph.vertices()
        )
        assert kstar_count(graph, k=k) == expected
        assert kstar_count(as_compact(graph), k=k) == expected

    @pytest.mark.parametrize("name,graph", CORPUS, ids=[n for n, _ in CORPUS])
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_fast_down_sensitivity_matches_brute_force(self, name, graph, k):
        if graph.number_of_vertices() > 10:
            pytest.skip("brute force too large")
        fast = kstar_down_sensitivity(graph, k=k)
        brute = down_sensitivity_brute_force(
            graph, lambda h: kstar_count(h, k=k)
        )
        assert fast == brute
        assert kstar_down_sensitivity(as_compact(graph), k=k) == fast

    @given(small_graphs())
    @settings(max_examples=30)
    def test_fast_down_sensitivity_matches_brute_force_random(self, graph):
        fast = kstar_down_sensitivity(graph, k=2)
        brute = down_sensitivity_brute_force(
            graph, lambda h: kstar_count(h, k=2)
        )
        assert fast == brute

    def test_worst_case_bound_dominates(self):
        for n in range(1, 9):
            clique = generators.complete_graph(n)
            assert (
                kstar_down_sensitivity(clique, k=2)
                <= kstar_down_sensitivity_bound(n, k=2)
            )


class TestDegreeHistogram:
    def test_high_degree_count(self):
        star = generators.star_graph(4)  # center degree 4, leaves 1
        assert high_degree_count(star, min_degree=1) == 5
        assert high_degree_count(star, min_degree=2) == 1
        assert high_degree_count(star, min_degree=5) == 0

    def test_min_degree_validation(self):
        star = generators.star_graph(3)
        with pytest.raises(ValueError, match="min_degree"):
            high_degree_count(star, min_degree=0)

    def test_histogram_is_cumulative_count_difference(self):
        graph = generators.grid_graph(3, 3)
        hist = degree_histogram(graph)
        n = graph.number_of_vertices()
        assert int(hist.sum()) == n
        for t in range(1, hist.size):
            assert high_degree_count(graph, min_degree=t) == int(
                hist[t:].sum()
            )


# ---------------------------------------------------------------------------
# poset tables


class TestPosetTables:
    @pytest.mark.parametrize(
        "name,graph",
        [(n, g) for n, g in CORPUS if g.number_of_vertices() <= 7],
        ids=[n for n, g in CORPUS if g.number_of_vertices() <= 7],
    )
    def test_ds_table_matches_per_subgraph_brute_force(self, name, graph):
        statistic = lambda h: high_degree_count(h, min_degree=1)  # noqa: E731
        tables = PosetTables(graph, statistic)
        for subset, table_value in tables.ds.items():
            sub = graph.induced_subgraph(subset)
            assert table_value == down_sensitivity_brute_force(sub, statistic)

    def test_extension_matches_explicit_ds_path(self):
        graph = generators.double_star_graph(3, 2)
        statistic = lambda h: kstar_count(h, k=2)  # noqa: E731
        for delta in (1.0, 2.0, 4.0, 8.0):
            via_tables = generic_lipschitz_extension(graph, statistic, delta)
            via_fast_ds = generic_lipschitz_extension(
                graph,
                statistic,
                delta,
                down_sensitivity=lambda h: kstar_down_sensitivity(h, k=2),
            )
            assert via_tables == via_fast_ds


# ---------------------------------------------------------------------------
# registry estimators


BIT_IDENTICAL_ESTIMATORS = ["generic_sf", "kstar", "deg_hist"]


class TestRegisteredGenericEstimators:
    def test_registered(self):
        names = estimator_names()
        for name in BIT_IDENTICAL_ESTIMATORS:
            assert name in names
        assert get_spec("kstar").max_graph_vertices == 16
        assert get_spec("deg_hist").max_graph_vertices == 16

    @pytest.mark.parametrize("estimator", BIT_IDENTICAL_ESTIMATORS)
    @pytest.mark.parametrize(
        "name,graph",
        [(n, g) for n, g in CORPUS if 1 <= g.number_of_vertices() <= 9],
        ids=[n for n, g in CORPUS if 1 <= g.number_of_vertices() <= 9],
    )
    def test_bit_identical_across_representations(
        self, estimator, name, graph
    ):
        compact = as_compact(graph)
        object_release = create(estimator, epsilon=1.0).release(
            graph, np.random.default_rng(7)
        )
        with forbid_object_coercion():
            compact_release = create(estimator, epsilon=1.0).release(
                compact, np.random.default_rng(7)
            )
        assert compact_release.value == object_release.value
        assert compact_release.delta_hat == object_release.delta_hat
        assert compact_release.metadata == object_release.metadata

    def test_options_flow_through(self):
        graph = generators.star_graph(4)
        release = create("kstar", epsilon=1.0, k=3).release(
            graph, np.random.default_rng(3)
        )
        assert release.metadata["k"] == 3
        release = create("deg_hist", epsilon=1.0, min_degree=2).release(
            graph, np.random.default_rng(3)
        )
        assert release.metadata["min_degree"] == 2

    def test_size_guard_is_loud_and_overridable(self):
        big = generators.path_graph(20)
        estimator = create("kstar", epsilon=1.0)
        assert not estimator.supports(big)
        with pytest.raises(ValueError, match="max_vertices"):
            estimator.release(big, np.random.default_rng(0))

    def test_true_value_matches_statistic(self):
        graph = generators.complete_graph(5)
        release = create("kstar", epsilon=1.0).release(
            graph, np.random.default_rng(11)
        )
        assert release.true_value == kstar_count(graph, k=2)
        release = create("deg_hist", epsilon=1.0).release(
            graph, np.random.default_rng(11)
        )
        assert release.true_value == high_degree_count(graph, min_degree=1)
