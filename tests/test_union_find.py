"""Tests for the union-find substrate."""

from hypothesis import given, strategies as st

from repro.graphs.union_find import UnionFind


class TestBasics:
    def test_initial_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert uf.component_count() == 3
        assert len(uf) == 3

    def test_union_reduces_count(self):
        uf = UnionFind([1, 2, 3])
        assert uf.union(1, 2) is True
        assert uf.component_count() == 2

    def test_redundant_union(self):
        uf = UnionFind([1, 2])
        uf.union(1, 2)
        assert uf.union(2, 1) is False
        assert uf.component_count() == 1

    def test_connected(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        uf.union(2, 3)
        assert uf.connected(0, 1)
        assert not uf.connected(1, 2)
        uf.union(1, 2)
        assert uf.connected(0, 3)

    def test_lazy_registration(self):
        uf = UnionFind()
        assert uf.find("x") == "x"
        assert "x" in uf
        assert uf.component_count() == 1

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add(1)
        uf.add(1)
        assert uf.component_count() == 1

    def test_groups(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(3, 4)
        groups = sorted(sorted(g) for g in uf.groups())
        assert groups == [[0, 1], [2], [3, 4]]


class TestPropertyBased:
    @given(
        st.integers(1, 20),
        st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40),
    )
    def test_matches_naive_partition(self, n, unions):
        """Cross-validate against a naive set-merging implementation."""
        uf = UnionFind(range(n))
        naive: list[set[int]] = [{i} for i in range(n)]

        def naive_find(x: int) -> set[int]:
            for group in naive:
                if x in group:
                    return group
            raise AssertionError

        for a, b in unions:
            if a >= n or b >= n:
                continue
            uf.union(a, b)
            ga, gb = naive_find(a), naive_find(b)
            if ga is not gb:
                ga |= gb
                naive.remove(gb)
        assert uf.component_count() == len(naive)
        for a in range(n):
            for b in range(n):
                assert uf.connected(a, b) == (naive_find(a) is naive_find(b))
