"""Property tests for Lemma 3.3: the extension family's guarantees.

Checks, on a deterministic corpus and on random small graphs:
underestimation, monotonicity in Δ, Δ-Lipschitzness w.r.t. node removal
and node insertion, exactness on graphs with spanning Δ-forests, and the
tightness of the Lipschitz constant (Remark 3.4).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.extension import SpanningForestExtension, evaluate_lipschitz_extension
from repro.graphs.components import spanning_forest_size
from repro.graphs.forests import (
    has_spanning_delta_forest_exact,
)
from repro.graphs.generators import empty_graph, star_graph, with_hub

from .strategies import deterministic_corpus, small_graphs

_DELTAS = [1, 2, 3, 4]


class TestLemma33OnCorpus:
    def test_underestimation(self):
        for name, g in deterministic_corpus():
            ext = SpanningForestExtension(g)
            for delta in _DELTAS:
                assert ext.value(delta) <= spanning_forest_size(g) + 1e-6, (
                    name,
                    delta,
                )

    def test_monotonicity_in_delta(self):
        for name, g in deterministic_corpus():
            ext = SpanningForestExtension(g)
            values = [ext.value(d) for d in _DELTAS]
            for a, b in zip(values, values[1:]):
                assert a <= b + 1e-6, name

    def test_exact_when_spanning_delta_forest_exists(self):
        """Item 1 of Lemma 3.3."""
        for name, g in deterministic_corpus():
            if g.number_of_vertices() > 7:
                continue
            ext = SpanningForestExtension(g)
            for delta in _DELTAS:
                if has_spanning_delta_forest_exact(g, delta):
                    assert ext.value(delta) == pytest.approx(
                        spanning_forest_size(g), abs=1e-5
                    ), (name, delta)


class TestLemma33PropertyBased:
    @given(small_graphs(max_vertices=6), st.integers(1, 4))
    @settings(max_examples=60)
    def test_underestimation_and_monotone(self, g, delta):
        ext = SpanningForestExtension(g)
        value = ext.value(delta)
        assert value <= spanning_forest_size(g) + 1e-6
        assert value <= ext.value(delta + 1) + 1e-6

    @given(small_graphs(min_vertices=1, max_vertices=6), st.integers(1, 4))
    @settings(max_examples=60)
    def test_lipschitz_under_node_removal(self, g, delta):
        """|f_Δ(G) − f_Δ(G−v)| ≤ Δ for every vertex v."""
        value = evaluate_lipschitz_extension(g, delta)
        for v in g.vertex_list():
            smaller = evaluate_lipschitz_extension(g.without_vertex(v), delta)
            assert abs(value - smaller) <= delta + 1e-5
            # removal can only decrease (monotone under node addition)
            assert smaller <= value + 1e-6

    @given(small_graphs(min_vertices=1, max_vertices=5), st.integers(1, 4))
    @settings(max_examples=40)
    def test_lipschitz_under_hub_insertion(self, g, delta):
        """Inserting the worst-case (all-adjacent) node moves f_Δ by ≤ Δ."""
        value = evaluate_lipschitz_extension(g, delta)
        bigger = evaluate_lipschitz_extension(with_hub(g), delta)
        assert bigger >= value - 1e-6
        assert bigger - value <= delta + 1e-5

    @given(small_graphs(max_vertices=6), st.integers(1, 4))
    @settings(max_examples=40)
    def test_exactness_item_1(self, g, delta):
        if has_spanning_delta_forest_exact(g, delta):
            assert evaluate_lipschitz_extension(g, delta) == pytest.approx(
                spanning_forest_size(g), abs=1e-5
            )


class TestRemark34:
    """The Lipschitz constant Δ is tight: G = Δ isolated vertices,
    G' = G plus a hub; f_Δ(G) = 0 and f_Δ(G') = Δ."""

    @pytest.mark.parametrize("delta", [1, 2, 3, 5])
    def test_tightness(self, delta):
        g = empty_graph(delta)
        g_prime = with_hub(g)
        assert evaluate_lipschitz_extension(g, delta) == 0.0
        assert evaluate_lipschitz_extension(g_prime, delta) == pytest.approx(
            float(delta)
        )


class TestExtensionObject:
    def test_caching(self):
        g = star_graph(4)
        ext = SpanningForestExtension(g)
        ext.value(2)
        ext.value(2)
        assert ext.evaluated_deltas() == [2.0]

    def test_gap_and_exactness(self):
        g = star_graph(4)
        ext = SpanningForestExtension(g)
        assert ext.gap(4) == pytest.approx(0.0)
        assert ext.is_exact_at(4)
        assert ext.gap(2) == pytest.approx(2.0)
        assert not ext.is_exact_at(2)

    def test_true_value(self):
        g = star_graph(3)
        assert SpanningForestExtension(g).true_value == 3

    def test_graph_property(self):
        g = star_graph(2)
        assert SpanningForestExtension(g).graph is g
