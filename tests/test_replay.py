"""Workload-replay generation: determinism, skew, serving round-trip."""

from __future__ import annotations

import hashlib
import io
import json
from collections import Counter
from dataclasses import replace

import pytest

from repro.experiments.replay import (
    ReplaySpec,
    ReplayTarget,
    expand,
    load_spec,
    write_jsonl,
)
from repro.service import ReleaseSession, serve_jsonl

SMOKE_SPEC = "examples/specs/replay_smoke.json"

# sha256 of the replay_smoke.json expansion.  The replay generator's
# whole contract is byte-determinism (same spec -> same JSONL on any
# machine); any change to RNG consumption order, id formatting, or JSON
# serialization shows up here.
SMOKE_DIGEST = (
    "2f5502f5dec8d6bf1c1ee4d2136a9e70fe9e6fcc76cb072233cbe3c605ec0cd3"
)


def tiny_spec(**overrides) -> ReplaySpec:
    base = dict(
        name="t",
        requests=50,
        targets=(
            ReplayTarget(graph="a.edges", estimators=("cc", "sf")),
            ReplayTarget(graph="b.edges", estimators=("cc",)),
        ),
        epsilons=(0.5, 1.0),
        zipf_s=1.0,
        seed=3,
    )
    base.update(overrides)
    return ReplaySpec(**base)


class TestReplaySpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="requests"):
            tiny_spec(requests=0)
        with pytest.raises(ValueError, match="target"):
            tiny_spec(targets=())
        with pytest.raises(ValueError, match="epsilon"):
            tiny_spec(epsilons=())
        with pytest.raises(ValueError, match="positive"):
            tiny_spec(epsilons=(0.0,))
        with pytest.raises(ValueError, match="zipf_s"):
            tiny_spec(zipf_s=-1.0)
        with pytest.raises(ValueError, match="estimator"):
            ReplayTarget(graph="a.edges", estimators=())

    def test_roundtrip_through_dict(self):
        spec = load_spec(SMOKE_SPEC)
        again = ReplaySpec.from_dict(spec.to_dict())
        assert again == spec

    def test_unknown_keys_are_loud(self):
        with pytest.raises(ValueError, match="unknown replay spec keys"):
            ReplaySpec.from_dict({"name": "x", "requests": 1, "typo": True})

    def test_zipf_probabilities(self):
        spec = tiny_spec(zipf_s=1.0)
        probs = spec.target_probabilities()
        assert probs == pytest.approx([2 / 3, 1 / 3])
        uniform = tiny_spec(zipf_s=0.0).target_probabilities()
        assert uniform == pytest.approx([0.5, 0.5])


class TestExpand:
    def test_deterministic_bytes(self):
        spec = load_spec(SMOKE_SPEC)
        first, second = io.StringIO(), io.StringIO()
        assert write_jsonl(spec, first) == spec.requests
        write_jsonl(spec, second)
        assert first.getvalue() == second.getvalue()
        digest = hashlib.sha256(first.getvalue().encode("utf-8")).hexdigest()
        assert digest == SMOKE_DIGEST

    def test_requests_are_wellformed(self):
        spec = load_spec(SMOKE_SPEC)
        requests = list(expand(spec))
        assert len(requests) == spec.requests
        ids = [r["id"] for r in requests]
        assert len(set(ids)) == len(ids)
        graphs = {t.graph for t in spec.targets}
        for request in requests:
            assert request["graph"] in graphs
            assert request["epsilon"] in spec.epsilons
            assert request["seed"] >= 0
            target = next(
                t for t in spec.targets if t.graph == request["graph"]
            )
            assert request["estimator"] in target.estimators

    def test_options_attach_to_matching_estimator_only(self):
        spec = load_spec(SMOKE_SPEC)
        for request in expand(spec):
            if request["estimator"] == "kstar":
                assert request["options"] == {"k": 2}
            elif request["estimator"] == "deg_hist":
                assert request["options"] == {"min_degree": 2}
            else:
                assert "options" not in request

    def test_zipf_skew_prefers_early_targets(self):
        spec = tiny_spec(requests=2000, zipf_s=1.5)
        counts = Counter(r["graph"] for r in expand(spec))
        assert counts["a.edges"] > counts["b.edges"] * 1.5

    def test_different_seeds_differ(self):
        spec = tiny_spec()
        a = [r["seed"] for r in expand(spec)]
        b = [r["seed"] for r in expand(replace(spec, seed=4))]
        assert a != b


class TestServingRoundTrip:
    def test_expanded_workload_serves_cleanly(self, tmp_path):
        graph_path = tmp_path / "g.edges"
        graph_path.write_text("0 1\n1 2\n2 3\n4\n")
        spec = ReplaySpec(
            name="serve",
            requests=8,
            targets=(
                ReplayTarget(graph=str(graph_path), estimators=("cc", "sf")),
            ),
            epsilons=(1.0,),
            zipf_s=0.0,
            seed=9,
        )
        lines = [
            json.dumps(r, sort_keys=True) for r in expand(spec)
        ]
        session = ReleaseSession()
        responses = list(serve_jsonl(lines, session))
        assert len(responses) == 8
        assert not any("error" in r for r in responses)
        # Replayed requests carry explicit seeds, so re-serving is
        # reproducible release by release.
        again = list(serve_jsonl(lines, ReleaseSession()))
        assert [r["value"] for r in again] == [
            r["value"] for r in responses
        ]

    def test_cli_requests_override(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "w.jsonl"
        code = main(
            [
                "replay",
                "--spec",
                SMOKE_SPEC,
                "--output",
                str(out),
                "--requests",
                "5",
            ]
        )
        assert code == 0
        lines = out.read_text().splitlines()
        assert len(lines) == 5
        assert "wrote 5 requests" in capsys.readouterr().err
