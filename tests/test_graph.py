"""Tests for the Graph data structure."""

import pytest
from hypothesis import given

from repro.graphs.graph import Graph, canonical_edge

from .strategies import small_graphs


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.number_of_vertices() == 0
        assert g.number_of_edges() == 0
        assert g.is_empty()

    def test_vertices_only(self):
        g = Graph(vertices=[3, 1, 2])
        assert g.vertex_list() == [3, 1, 2]
        assert g.number_of_edges() == 0

    def test_edges_add_endpoints(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        assert g.number_of_vertices() == 3
        assert g.has_edge(0, 1) and g.has_edge(1, 0)

    def test_duplicate_edges_ignored(self):
        g = Graph(edges=[(0, 1), (1, 0), (0, 1)])
        assert g.number_of_edges() == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge(1, 1)

    def test_string_vertices(self):
        g = Graph(edges=[("a", "b")])
        assert g.has_edge("b", "a")
        assert g.degree("a") == 1


class TestMutation:
    def test_remove_edge(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        g.remove_edge(1, 0)
        assert not g.has_edge(0, 1)
        assert g.number_of_vertices() == 3

    def test_remove_missing_edge_raises(self):
        g = Graph(vertices=[0, 1])
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)

    def test_remove_vertex(self):
        g = Graph(edges=[(0, 1), (0, 2), (1, 2)])
        g.remove_vertex(0)
        assert g.number_of_vertices() == 2
        assert g.has_edge(1, 2)
        assert not g.has_vertex(0)

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(KeyError):
            Graph().remove_vertex(7)

    def test_add_vertex_with_edges(self):
        g = Graph(vertices=[0, 1, 2])
        g.add_vertex_with_edges(9, [0, 2])
        assert g.degree(9) == 2
        assert g.has_edge(9, 0) and g.has_edge(9, 2)

    def test_add_vertex_with_edges_existing_vertex_raises(self):
        g = Graph(vertices=[0, 1])
        with pytest.raises(ValueError, match="already"):
            g.add_vertex_with_edges(0, [1])

    def test_add_vertex_with_edges_missing_neighbor_raises(self):
        g = Graph(vertices=[0])
        with pytest.raises(ValueError, match="not in graph"):
            g.add_vertex_with_edges(1, [5])

    def test_insertion_inverts_removal(self):
        g = Graph(edges=[(0, 1), (0, 2), (1, 2), (2, 3)])
        neighbors = g.neighbors(2)
        h = g.copy()
        h.remove_vertex(2)
        h.add_vertex_with_edges(2, neighbors)
        assert h == g


class TestQueries:
    def test_degrees(self):
        g = Graph(edges=[(0, 1), (0, 2)])
        g.add_vertex(5)
        assert g.degrees() == {0: 2, 1: 1, 2: 1, 5: 0}
        assert g.max_degree() == 2

    def test_max_degree_empty(self):
        assert Graph().max_degree() == 0

    def test_edges_canonical_and_unique(self):
        g = Graph(edges=[(2, 1), (1, 0)])
        assert sorted(g.edges()) == [(0, 1), (1, 2)]

    def test_neighbors_immutable_copy(self):
        g = Graph(edges=[(0, 1)])
        nbrs = g.neighbors(0)
        assert nbrs == frozenset([1])
        g.remove_edge(0, 1)
        assert nbrs == frozenset([1])  # snapshot, not a live view

    def test_contains_len_iter(self):
        g = Graph(vertices=[0, 1], edges=[(0, 1)])
        assert 0 in g and 7 not in g
        assert len(g) == 2
        assert list(g) == [0, 1]


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        g = Graph(edges=[(0, 1)])
        h = g.copy()
        h.add_edge(0, 2)
        assert not g.has_vertex(2)

    def test_induced_subgraph(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        sub = g.induced_subgraph([0, 1, 2])
        assert sub.number_of_vertices() == 3
        assert sub.number_of_edges() == 3
        assert not sub.has_vertex(3)

    def test_induced_subgraph_ignores_foreign_vertices(self):
        g = Graph(vertices=[0, 1])
        sub = g.induced_subgraph([0, 99])
        assert sub.vertex_list() == [0]

    def test_without_vertex(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        h = g.without_vertex(1)
        assert h.number_of_edges() == 0
        assert g.has_edge(0, 1)  # original untouched

    def test_subgraph_with_edges(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        sub = g.subgraph_with_edges([(0, 1)])
        assert sub.number_of_vertices() == 3
        assert sub.number_of_edges() == 1

    def test_subgraph_with_foreign_edge_raises(self):
        g = Graph(edges=[(0, 1)])
        g.add_vertex(2)
        with pytest.raises(ValueError, match="not an edge"):
            g.subgraph_with_edges([(0, 2)])


class TestEquality:
    def test_equal_graphs(self):
        assert Graph(edges=[(0, 1)]) == Graph(edges=[(1, 0)])

    def test_different_vertices(self):
        assert Graph(vertices=[0]) != Graph(vertices=[1])

    def test_different_edges(self):
        a = Graph(vertices=[0, 1], edges=[(0, 1)])
        b = Graph(vertices=[0, 1])
        assert a != b

    def test_non_graph_comparison(self):
        assert Graph() != 42


class TestCanonicalEdge:
    def test_orders_ints(self):
        assert canonical_edge(2, 1) == (1, 2)
        assert canonical_edge(1, 2) == (1, 2)

    def test_mixed_types_fall_back_to_repr(self):
        e1 = canonical_edge("a", 1)
        e2 = canonical_edge(1, "a")
        assert e1 == e2


class TestPropertyBased:
    @given(small_graphs())
    def test_handshake_lemma(self, g):
        assert sum(g.degrees().values()) == 2 * g.number_of_edges()

    @given(small_graphs())
    def test_copy_equals_original(self, g):
        assert g.copy() == g

    @given(small_graphs(min_vertices=1))
    def test_vertex_removal_drops_incident_edges(self, g):
        v = g.vertex_list()[0]
        d = g.degree(v)
        m = g.number_of_edges()
        h = g.without_vertex(v)
        assert h.number_of_edges() == m - d

    @given(small_graphs())
    def test_induced_on_full_vertex_set_is_identity(self, g):
        assert g.induced_subgraph(g.vertices()) == g
