"""Tests for spanning forests, Algorithm 3 (local repair), and Δ*."""

import pytest
from hypothesis import given, settings

from repro.graphs.components import number_of_connected_components
from repro.graphs.forests import (
    approx_min_degree_spanning_forest,
    delta_star_lower_bound,
    forest_max_degree,
    has_spanning_delta_forest_exact,
    is_forest,
    is_spanning_forest_of,
    leaf_elimination_order,
    min_spanning_forest_degree_exact,
    repair_spanning_forest,
    spanning_forest,
    spanning_forest_with_max_degree,
)
from repro.graphs.generators import (
    caterpillar_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    empty_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.stars import is_induced_star, star_number

from .strategies import deterministic_corpus, small_graphs


class TestSpanningForest:
    def test_basic_properties(self):
        for name, g in deterministic_corpus():
            forest = spanning_forest(g)
            assert is_spanning_forest_of(forest, g), name

    def test_cycle_drops_one_edge(self):
        forest = spanning_forest(cycle_graph(5))
        assert forest.number_of_edges() == 4

    def test_edgeless(self):
        forest = spanning_forest(empty_graph(3))
        assert forest.number_of_edges() == 0
        assert forest.number_of_vertices() == 3


class TestIsForest:
    def test_tree(self):
        assert is_forest(path_graph(4))

    def test_cycle_is_not(self):
        assert not is_forest(cycle_graph(3))

    def test_empty(self):
        assert is_forest(Graph())


class TestIsSpanningForestOf:
    def test_wrong_vertex_set(self):
        assert not is_spanning_forest_of(path_graph(3), path_graph(4))

    def test_foreign_edges(self):
        g = empty_graph(2)
        claimed = Graph(vertices=range(2), edges=[(0, 1)])
        assert not is_spanning_forest_of(claimed, g)

    def test_not_maximal(self):
        g = path_graph(3)
        claimed = g.subgraph_with_edges([(0, 1)])
        assert not is_spanning_forest_of(claimed, g)

    def test_cyclic_rejected(self):
        g = cycle_graph(3)
        assert not is_spanning_forest_of(g, g)


class TestLeafEliminationOrder:
    def test_covers_all_vertices(self):
        for name, g in deterministic_corpus():
            order = leaf_elimination_order(g)
            assert sorted(order, key=repr) == sorted(g.vertices(), key=repr), name

    @given(small_graphs())
    def test_each_removed_vertex_not_cut(self, g):
        """Removing the prescribed vertex never increases the number of
        components minus one per removed isolated tree (non-cut)."""
        remaining = g.copy()
        for v in leaf_elimination_order(g):
            before = number_of_connected_components(remaining)
            was_isolated = remaining.degree(v) == 0
            remaining.remove_vertex(v)
            after = number_of_connected_components(remaining)
            if was_isolated:
                assert after == before - 1
            else:
                assert after == before


class TestRepairAlgorithm:
    """Algorithm 3 / Lemma 1.8."""

    def test_lemma_1_8_on_corpus(self):
        """No induced Δ-star ⇒ the construction finds a spanning Δ-forest."""
        for name, g in deterministic_corpus():
            s = star_number(g)
            delta = s + 1
            result = repair_spanning_forest(g, delta)
            assert result.forest is not None, name
            assert is_spanning_forest_of(result.forest, g), name
            assert forest_max_degree(result.forest) <= delta, name

    @given(small_graphs())
    @settings(max_examples=100)
    def test_lemma_1_8_property(self, g):
        delta = star_number(g) + 1
        result = repair_spanning_forest(g, delta)
        assert result.forest is not None
        assert is_spanning_forest_of(result.forest, g)
        assert forest_max_degree(result.forest) <= delta

    @given(small_graphs())
    def test_failure_certificate_is_induced_star(self, g):
        """When the construction fails, the certificate is a genuine
        induced Δ-star of G."""
        for delta in range(1, 5):
            result = repair_spanning_forest(g, delta)
            if result.forest is None and result.star is not None:
                center, leaves = result.star
                assert len(leaves) == delta
                assert is_induced_star(g, center, leaves)

    @given(small_graphs())
    def test_success_result_is_valid(self, g):
        for delta in range(1, 5):
            result = repair_spanning_forest(g, delta)
            if result.forest is not None:
                assert is_spanning_forest_of(result.forest, g)
                assert forest_max_degree(result.forest) <= delta

    def test_star_cannot_be_repaired_below_its_size(self):
        g = star_graph(5)
        assert spanning_forest_with_max_degree(g, 4) is None
        assert spanning_forest_with_max_degree(g, 5) is not None

    def test_k23_repairable_to_degree_2(self):
        """K_{2,3} has a Hamiltonian path, i.e. a spanning 2-forest,
        even though s(K_{2,3}) = 3 -- the opportunistic case."""
        g = complete_bipartite_graph(2, 3)
        forest = spanning_forest_with_max_degree(g, 2)
        # The construction is not guaranteed to find it (s >= delta), but
        # whatever it returns must be valid.
        if forest is not None:
            assert is_spanning_forest_of(forest, g)
            assert forest_max_degree(forest) <= 2

    def test_delta_zero_edgeless(self):
        g = empty_graph(3)
        result = repair_spanning_forest(g, 0)
        assert result.forest is not None
        assert result.forest.number_of_edges() == 0

    def test_delta_zero_with_edges_fails(self):
        assert repair_spanning_forest(path_graph(2), 0).forest is None

    def test_negative_delta_raises(self):
        with pytest.raises(ValueError):
            repair_spanning_forest(path_graph(2), -1)

    def test_repair_count_figure_1_scenario(self):
        """A concrete instance that forces at least one local repair:
        grid-like graph where the naive insertion overloads a vertex."""
        g = complete_graph(5)
        result = repair_spanning_forest(g, 2)
        assert result.forest is not None  # K5 has a Hamiltonian path
        assert forest_max_degree(result.forest) <= 2


class TestExactDeltaStar:
    def test_star(self):
        assert min_spanning_forest_degree_exact(star_graph(4)) == 4

    def test_path(self):
        assert min_spanning_forest_degree_exact(path_graph(5)) == 2

    def test_edgeless(self):
        assert min_spanning_forest_degree_exact(empty_graph(4)) == 0

    def test_single_edge(self):
        assert min_spanning_forest_degree_exact(path_graph(2)) == 1

    def test_k23_is_2(self):
        """K_{2,3} has a Hamiltonian path: Δ* = 2 < s(G) = 3."""
        assert min_spanning_forest_degree_exact(complete_bipartite_graph(2, 3)) == 2

    def test_cycle(self):
        assert min_spanning_forest_degree_exact(cycle_graph(6)) == 2

    def test_disjoint_union_takes_max(self):
        g = disjoint_union([star_graph(3), path_graph(4)])
        assert min_spanning_forest_degree_exact(g) == 3

    def test_matching(self):
        g = disjoint_union([path_graph(2), path_graph(2)])
        assert min_spanning_forest_degree_exact(g) == 1

    @given(small_graphs(max_vertices=6))
    @settings(max_examples=40)
    def test_lemma_1_6(self, g):
        """Δ* ≤ DS_fsf(G) + 1 = s(G) + 1 (Lemma 1.6 via Lemma 1.7)."""
        if g.is_empty():
            return
        assert min_spanning_forest_degree_exact(g) <= star_number(g) + 1

    @given(small_graphs(max_vertices=6))
    @settings(max_examples=40)
    def test_exact_decision_consistency(self, g):
        delta_star = min_spanning_forest_degree_exact(g)
        if delta_star >= 1:
            assert has_spanning_delta_forest_exact(g, delta_star)
        if delta_star >= 2:
            assert not has_spanning_delta_forest_exact(g, delta_star - 1)


class TestApproxMinDegreeForest:
    def test_result_valid_on_corpus(self):
        for name, g in deterministic_corpus():
            forest, achieved = approx_min_degree_spanning_forest(g)
            assert is_spanning_forest_of(forest, g), name
            assert forest_max_degree(forest) == achieved, name

    @given(small_graphs(max_vertices=6))
    @settings(max_examples=40)
    def test_achieved_within_lemma_bound(self, g):
        """achieved ≤ s(G) + 1 and achieved ≥ Δ* (sandwich)."""
        _, achieved = approx_min_degree_spanning_forest(g)
        if g.is_empty():
            assert achieved == 0
            return
        assert achieved <= max(star_number(g) + 1, 1)
        assert achieved >= min_spanning_forest_degree_exact(g)

    def test_grid_reaches_low_degree(self):
        _, achieved = approx_min_degree_spanning_forest(grid_graph(4, 4))
        assert achieved <= 3

    def test_caterpillar(self):
        g = caterpillar_graph(4, 3)
        forest, achieved = approx_min_degree_spanning_forest(g)
        # legs force degree >= 3 on spine vertices (pendant edges are in
        # every spanning forest); interior spine vertices reach 4-ish.
        assert achieved >= 3
        assert is_spanning_forest_of(forest, g)


class TestDeltaStarLowerBound:
    def test_star_cut_vertex(self):
        assert delta_star_lower_bound(star_graph(5)) == 5

    def test_path_interior(self):
        assert delta_star_lower_bound(path_graph(5)) == 2

    def test_edgeless_zero(self):
        assert delta_star_lower_bound(empty_graph(3)) == 0

    def test_empty_graph(self):
        assert delta_star_lower_bound(Graph()) == 0

    @given(small_graphs(max_vertices=6))
    @settings(max_examples=40)
    def test_is_a_lower_bound(self, g):
        assert delta_star_lower_bound(g) <= min_spanning_forest_degree_exact(g)

    def test_custom_vertex_sets(self):
        g = star_graph(4)
        bound = delta_star_lower_bound(g, vertex_sets=[frozenset([0])])
        assert bound == 4


class TestEnumLimit:
    def test_large_graph_rejected(self):
        g = complete_graph(12)
        with pytest.raises(ValueError, match="too large"):
            has_spanning_delta_forest_exact(g, 3)
