"""Tests for the worst-case lower-bound module."""

import math

import pytest

from repro.core.lower_bounds import (
    chain_distance_budget,
    hard_instance_chain,
    worst_case_error_lower_bound,
)
from repro.graphs.components import number_of_connected_components
from repro.graphs.distance import node_distance


class TestHardChain:
    def test_statistic_sweeps(self):
        chain = hard_instance_chain(10, 6)
        assert number_of_connected_components(chain[0]) == 9
        for j in range(1, 7):
            assert number_of_connected_components(chain[j]) == 10 - j

    def test_consecutive_distance_at_most_two(self):
        chain = hard_instance_chain(8, 5)
        assert node_distance(chain[0], chain[1]) == 1  # hub insertion
        for a, b in zip(chain[1:], chain[2:]):
            assert node_distance(a, b) <= 2

    def test_vertex_budget(self):
        chain = hard_instance_chain(6, 5)
        assert all(g.number_of_vertices() <= 6 for g in chain)

    def test_validation(self):
        with pytest.raises(ValueError):
            hard_instance_chain(1, 1)
        with pytest.raises(ValueError):
            hard_instance_chain(5, 5)
        with pytest.raises(ValueError):
            hard_instance_chain(5, 0)


class TestLowerBound:
    def test_decreases_with_epsilon(self):
        assert worst_case_error_lower_bound(1000, 0.01) > worst_case_error_lower_bound(
            1000, 0.1
        )

    def test_zero_for_large_epsilon(self):
        assert worst_case_error_lower_bound(100, 10.0) == 0.0

    def test_capped_by_n(self):
        tiny = worst_case_error_lower_bound(4, 1e-6)
        assert tiny <= (4 - 1 - 1) / 2.0 + 1e-9

    def test_explicit_value(self):
        # k = min(1 + floor(ln2/(2 eps)), n-1); bound = (k-1)/2.
        eps = 0.01
        k = 1 + int(math.log(2) / (2 * eps))
        assert worst_case_error_lower_bound(10**6, eps) == (k - 1) / 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            worst_case_error_lower_bound(0, 1.0)
        with pytest.raises(ValueError):
            worst_case_error_lower_bound(10, 0.0)


class TestDistanceBudget:
    def test_formula(self):
        assert chain_distance_budget(3, 0.5) == pytest.approx(math.exp(3.0))

    def test_zero_length(self):
        assert chain_distance_budget(0, 1.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            chain_distance_budget(-1, 1.0)
        with pytest.raises(ValueError):
            chain_distance_budget(2, 0.0)


class TestConsistencyWithUpperBound:
    def test_paper_bound_respects_impossibility(self):
        """Theorem 1.3's guarantee at the chain's connected end (where
        Δ* ≈ n) must not beat the impossibility frontier."""
        from repro.core.bounds import theorem_1_3_bound

        n, eps = 200, 0.05
        lower = worst_case_error_lower_bound(n, eps)
        # At the connected end of the chain the hub has degree n-1, and
        # Δ* can be as large as n - 1.
        upper_at_hard_end = theorem_1_3_bound(n, eps, n - 1)
        assert upper_at_hard_end >= lower
