"""Differential tests for the on-disk CompactGraph store (PR-9 tentpole).

The contract under test: a memmap-backed graph opened from a ``.npz``
archive is *bit-indistinguishable* from the in-RAM graph it was saved
from — same fingerprints, same component structure, same kernel
results, same copy-on-write edits — and every corruption or mismatch
fails loudly with :class:`GraphStoreError` rather than serving a wrong
graph.
"""

from __future__ import annotations

import os
import pickle
import zipfile

import numpy as np
import pytest
from hypothesis import given, settings

from repro import telemetry
from repro.graphs.compact import CompactGraph, as_compact
from repro.graphs.io import read_edge_list_auto, write_edge_list
from repro.graphs.store import (
    FORMAT_NAME,
    FORMAT_VERSION,
    GraphStoreError,
    csr_nbytes,
    open_npz,
    save_npz,
)

from .strategies import deterministic_corpus, small_graphs

_CORPUS = deterministic_corpus()


def _roundtrip(graph: CompactGraph, tmp_path, name="g.npz", **open_kwargs):
    path = os.path.join(str(tmp_path), name)
    save_npz(graph, path)
    return open_npz(path, **open_kwargs), path


def _assert_same_graph(a: CompactGraph, b: CompactGraph) -> None:
    assert a.number_of_vertices() == b.number_of_vertices()
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert a.fingerprint() == b.fingerprint()
    assert np.array_equal(a.component_labels(), b.component_labels())
    assert a.component_fingerprints() == b.component_fingerprints()
    assert a.number_of_connected_components() == (
        b.number_of_connected_components()
    )
    assert a.spanning_forest_size() == b.spanning_forest_size()
    assert a.star_number_lower_bound() == b.star_number_lower_bound()
    assert a.star_number_upper_bound() == b.star_number_upper_bound()


@pytest.mark.parametrize(
    "name,graph", _CORPUS, ids=[name for name, _ in _CORPUS]
)
def test_roundtrip_corpus(name, graph, tmp_path):
    compact = as_compact(graph)
    if any(type(v) not in (int, str) for v in compact.vertices()):
        # Only int/str labels are storable by design; keep the corpus
        # entry's structure and drop the exotic labels.
        compact = CompactGraph(compact.indptr, compact.indices)
    opened, _ = _roundtrip(compact, tmp_path)
    _assert_same_graph(compact, opened)


@settings(max_examples=40, deadline=None)
@given(graph=small_graphs())
def test_roundtrip_hypothesis(graph, tmp_path_factory):
    compact = as_compact(graph)
    opened, _ = _roundtrip(
        compact, tmp_path_factory.mktemp("store"), name="h.npz"
    )
    _assert_same_graph(compact, opened)


def test_memmap_is_zero_copy(tmp_path):
    graph = CompactGraph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
    opened, path = _roundtrip(graph, tmp_path)
    # ascontiguousarray on an aligned int64 memmap returns a view, so
    # the CSR arrays must still be backed by the file mapping.
    assert isinstance(opened.indptr.base, np.memmap)
    assert isinstance(opened.indices.base, np.memmap)
    assert opened.source_path == os.path.abspath(path)

    in_ram = open_npz(path, mmap=False)
    assert not isinstance(in_ram.indptr.base, np.memmap)
    # mmap=False still records the backing path (cheap path-pickles);
    # only derived graphs (e.g. apply_edits results) drop it.
    assert in_ram.source_path == os.path.abspath(path)
    _assert_same_graph(opened, in_ram)


def test_apply_edits_on_memmapped_graph(tmp_path):
    graph = CompactGraph.from_edges(8, [(0, 1), (1, 2), (3, 4), (5, 6)])
    opened, _ = _roundtrip(graph, tmp_path)

    edits = dict(inserts=[(6, 7), (2, 3)], deletes=[(0, 1)])
    expected = graph.apply_edits(**edits)
    actual = opened.apply_edits(**edits)

    _assert_same_graph(expected.graph, actual.graph)
    assert actual.graph.source_path is None  # copy-on-write: RAM result
    assert expected.touched_old == actual.touched_old
    assert expected.touched_new == actual.touched_new
    # The memmapped original is untouched.
    _assert_same_graph(opened, graph)


def test_pickle_roundtrips_by_path(tmp_path):
    graph = CompactGraph.from_edges(
        2000, [(i, i + 1) for i in range(0, 1998, 2)]
    )
    opened, _ = _roundtrip(graph, tmp_path)

    blob = pickle.dumps(opened)
    # File-backed graphs pickle as (path, fingerprint), not as arrays:
    # that is what keeps parallel-serving worker handoff zero-copy.
    assert len(blob) < 2000
    clone = pickle.loads(blob)
    assert isinstance(clone.indptr.base, np.memmap)
    _assert_same_graph(opened, clone)

    # In-RAM graphs still pickle by value.
    ram_blob = pickle.dumps(graph)
    assert len(ram_blob) > len(blob)
    _assert_same_graph(pickle.loads(ram_blob), graph)


def test_pickle_detects_stale_file(tmp_path):
    graph = CompactGraph.from_edges(5, [(0, 1), (2, 3)])
    opened, path = _roundtrip(graph, tmp_path)
    blob = pickle.dumps(opened)
    # Overwrite the archive with a different graph: the unpickle must
    # refuse to serve it in place of the graph that was pickled.
    save_npz(CompactGraph.from_edges(5, [(0, 2), (2, 4)]), path)
    with pytest.raises(GraphStoreError, match="fingerprint"):
        pickle.loads(blob)


def test_labels_roundtrip(tmp_path):
    graph = CompactGraph.from_edges(
        4, [(0, 1), (2, 3)], labels=["a", "b", "c", 3]
    )
    opened, _ = _roundtrip(graph, tmp_path)
    assert list(opened.vertices()) == list(graph.vertices())
    assert [type(v) for v in opened.vertices()] == [str, str, str, int]
    assert opened.fingerprint() == graph.fingerprint()


def test_unserializable_labels_rejected(tmp_path):
    graph = CompactGraph.from_edges(
        2, [(0, 1)], labels=[(0, 1), (2, 3)]
    )
    with pytest.raises(GraphStoreError, match="label"):
        save_npz(graph, os.path.join(str(tmp_path), "bad.npz"))


def test_verify_catches_tampered_bytes(tmp_path):
    graph = CompactGraph.from_edges(64, [(i, i + 1) for i in range(63)])
    _, path = _roundtrip(graph, tmp_path)

    # Flip one byte inside the indices payload (not the zip directory).
    with open(path, "r+b") as handle:
        data = bytearray(handle.read())
        needle = np.asarray(graph.indices[:8]).tobytes()
        offset = bytes(data).index(needle)
        data[offset + 3] ^= 0x01
        handle.seek(0)
        handle.write(data)

    with pytest.raises(GraphStoreError):
        open_npz(path, verify=True)


def test_expected_fingerprint_mismatch(tmp_path):
    graph = CompactGraph.from_edges(3, [(0, 1)])
    _, path = _roundtrip(graph, tmp_path)
    with pytest.raises(GraphStoreError, match="fingerprint"):
        open_npz(path, expected_fingerprint="deadbeef")


def _rewrite_meta(path: str, mutate) -> None:
    import json

    with zipfile.ZipFile(path) as archive:
        members = {
            info.filename: archive.read(info.filename)
            for info in archive.infolist()
        }
    meta = json.loads(members["meta.json"])
    mutate(meta)
    members["meta.json"] = json.dumps(meta).encode()
    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        for name, payload in members.items():
            archive.writestr(name, payload)


def test_wrong_format_and_version_fail_loudly(tmp_path):
    graph = CompactGraph.from_edges(3, [(0, 1)])
    _, path = _roundtrip(graph, tmp_path)

    _rewrite_meta(path, lambda m: m.update(version=FORMAT_VERSION + 1))
    with pytest.raises(GraphStoreError, match="version"):
        open_npz(path)

    _, path = _roundtrip(graph, tmp_path, name="g2.npz")
    _rewrite_meta(path, lambda m: m.update(format="not-a-graph"))
    with pytest.raises(GraphStoreError, match="format"):
        open_npz(path)

    plain = os.path.join(str(tmp_path), "plain.npz")
    np.savez(plain, indptr=np.array([0, 0]))
    with pytest.raises(GraphStoreError):
        open_npz(plain)


def test_archive_is_np_load_compatible_and_deterministic(tmp_path):
    graph = CompactGraph.from_edges(10, [(0, 1), (4, 7), (8, 9)])
    _, path_a = _roundtrip(graph, tmp_path, name="a.npz")
    _, path_b = _roundtrip(graph, tmp_path, name="b.npz")

    with open(path_a, "rb") as fa, open(path_b, "rb") as fb:
        assert fa.read() == fb.read()  # byte-identical archives

    with np.load(path_a) as payload:
        assert np.array_equal(payload["indptr"], graph.indptr)
        assert np.array_equal(payload["indices"], graph.indices)

    assert FORMAT_NAME == "repro-compact-graph"
    assert csr_nbytes(graph) == graph.indptr.nbytes + graph.indices.nbytes


def test_empty_graph_roundtrip(tmp_path):
    for n in (0, 3):
        graph = CompactGraph.from_edges(n, [])
        opened, _ = _roundtrip(graph, tmp_path, name=f"empty{n}.npz")
        _assert_same_graph(graph, opened)


def test_io_dispatch_npz(tmp_path):
    graph = CompactGraph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
    path = os.path.join(str(tmp_path), "dispatch.npz")
    write_edge_list(graph, path)
    opened = read_edge_list_auto(path)
    assert isinstance(opened.indptr.base, np.memmap)
    _assert_same_graph(graph, as_compact(opened))

    # Text paths keep working through the same entry points.
    text_path = os.path.join(str(tmp_path), "dispatch.txt")
    write_edge_list(graph, text_path)
    from_text = as_compact(read_edge_list_auto(text_path))
    assert from_text.fingerprint() == graph.fingerprint()


def test_graph_load_telemetry(tmp_path):
    graph = CompactGraph.from_edges(4, [(0, 1), (2, 3)])
    path = os.path.join(str(tmp_path), "counted.npz")
    save_npz(graph, path)

    before = telemetry.snapshot()
    open_npz(path)
    open_npz(path, mmap=False)
    text_path = os.path.join(str(tmp_path), "counted.txt")
    write_edge_list(graph, text_path)
    read_edge_list_auto(text_path)
    after = telemetry.snapshot()

    def loads(snap, backend):
        return telemetry.counter_value(
            snap, "repro_graph_loads_total", backend=backend
        )

    assert loads(after, "memmap") - loads(before, "memmap") == 1.0
    assert loads(after, "ram") - loads(before, "ram") == 2.0
