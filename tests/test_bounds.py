"""Tests for the explicit theoretical bounds."""

import pytest

from repro.core.bounds import (
    erdos_renyi_error_bound,
    geometric_error_bound,
    theorem_1_3_bound,
    theorem_1_5_bound,
)


class TestTheorem13Bound:
    def test_positive(self):
        assert theorem_1_3_bound(100, 1.0, 3.0) > 0

    def test_linear_in_delta_star(self):
        a = theorem_1_3_bound(100, 1.0, 2.0)
        b = theorem_1_3_bound(100, 1.0, 4.0)
        assert b == pytest.approx(2 * a)

    def test_inverse_in_epsilon(self):
        a = theorem_1_3_bound(100, 1.0, 3.0)
        b = theorem_1_3_bound(100, 2.0, 3.0)
        assert a == pytest.approx(2 * b)

    def test_grows_slowly_in_n(self):
        """ln ln n growth: doubling n barely moves the bound."""
        small = theorem_1_3_bound(10**3, 1.0, 3.0, beta=0.1)
        large = theorem_1_3_bound(10**6, 1.0, 3.0, beta=0.1)
        assert large > small
        assert large / small < 1.5

    def test_explicit_beta(self):
        loose = theorem_1_3_bound(100, 1.0, 3.0, beta=0.5)
        tight = theorem_1_3_bound(100, 1.0, 3.0, beta=0.01)
        assert tight > loose

    def test_gem_constant_scales(self):
        base = theorem_1_3_bound(100, 1.0, 3.0)
        assert theorem_1_3_bound(100, 1.0, 3.0, gem_constant=2.0) == pytest.approx(
            2 * base
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            theorem_1_3_bound(0, 1.0, 3.0)
        with pytest.raises(ValueError):
            theorem_1_3_bound(10, 0.0, 3.0)
        with pytest.raises(ValueError):
            theorem_1_3_bound(10, 1.0, -1.0)


class TestDerivedBounds:
    def test_theorem_1_5_uses_ds_plus_one(self):
        assert theorem_1_5_bound(100, 1.0, 2.0) == pytest.approx(
            theorem_1_3_bound(100, 1.0, 3.0)
        )

    def test_erdos_renyi_grows_like_log_n(self):
        a = erdos_renyi_error_bound(100, 1.0)
        b = erdos_renyi_error_bound(10_000, 1.0)
        assert 1 < b / a < 4  # roughly log-factor growth

    def test_geometric_bound_fixed_delta(self):
        assert geometric_error_bound(100, 1.0) == pytest.approx(
            theorem_1_3_bound(100, 1.0, 6.0)
        )

    def test_geometric_smaller_than_er_for_large_n(self):
        n = 10**6
        assert geometric_error_bound(n, 1.0) < erdos_renyi_error_bound(n, 1.0)
