"""Tests for the batched trial engine (repro.analysis.trials)."""

import numpy as np
import pytest

from repro.analysis.trials import (
    BatchTrialResult,
    TrialConfig,
    run_trial_batch,
    run_trials,
    summarize_errors,
)
from repro.core.algorithm import PrivateConnectedComponents
from repro.graphs.generators import erdos_renyi_compact, planted_components
from repro.graphs.graph import Graph
from repro.mechanisms.laplace import LaplaceMechanism


class _LaplaceOnTruth:
    """Minimal mechanism: exact statistic plus Laplace(1/epsilon) noise."""

    def __init__(self, epsilon: float) -> None:
        self._mech = LaplaceMechanism(sensitivity=1.0, epsilon=epsilon)

    def release(self, graph, rng):
        from repro.graphs.components import number_of_connected_components

        return self._mech.release(
            float(number_of_connected_components(graph)), rng
        )


def _factory(config: TrialConfig) -> _LaplaceOnTruth:
    """Module-level factory so the process-pool path can pickle it."""
    return _LaplaceOnTruth(config.epsilon)


def _private_cc_factory(config: TrialConfig) -> PrivateConnectedComponents:
    return PrivateConnectedComponents(epsilon=config.epsilon)


@pytest.fixture
def small_graph():
    return Graph(vertices=range(6), edges=[(0, 1), (1, 2), (3, 4)])


class TestTrialConfig:
    def test_validation(self, small_graph):
        with pytest.raises(ValueError):
            TrialConfig(graph=small_graph, epsilon=0.0, seed=1)
        with pytest.raises(ValueError):
            TrialConfig(graph=small_graph, epsilon=-1.0, seed=1)
        with pytest.raises(ValueError):
            TrialConfig(graph=small_graph, epsilon=1.0, seed=1, n_trials=0)

    def test_defaults(self, small_graph):
        cfg = TrialConfig(graph=small_graph, epsilon=1.0, seed=7)
        assert cfg.n_trials == 100
        assert cfg.name == ""


class TestSerialEngine:
    def test_results_keep_input_order_and_names(self, small_graph):
        configs = [
            TrialConfig(small_graph, epsilon=e, seed=s, n_trials=5, name=f"e{e}-s{s}")
            for e in (0.5, 2.0)
            for s in (1, 2)
        ]
        results = run_trial_batch(_factory, configs)
        assert [r.name for r in results] == [c.name for c in configs]
        for r, c in zip(results, configs):
            assert isinstance(r, BatchTrialResult)
            assert r.config is c
            assert r.errors.shape == (c.n_trials,)
            assert r.summary.n_trials == c.n_trials

    def test_same_seed_is_deterministic(self, small_graph):
        cfg = TrialConfig(small_graph, epsilon=1.0, seed=42, n_trials=8)
        first = run_trial_batch(_factory, [cfg])[0]
        second = run_trial_batch(_factory, [cfg])[0]
        assert np.array_equal(first.errors, second.errors)

    def test_different_seeds_differ(self, small_graph):
        a, b = run_trial_batch(
            _factory,
            [
                TrialConfig(small_graph, epsilon=1.0, seed=1, n_trials=8),
                TrialConfig(small_graph, epsilon=1.0, seed=2, n_trials=8),
            ],
        )
        assert not np.array_equal(a.errors, b.errors)

    def test_per_trial_rngs_are_independent_of_batch_shape(self, small_graph):
        """Trial i of a config depends only on (seed, i), not on what else
        is in the batch."""
        cfg = TrialConfig(small_graph, epsilon=1.0, seed=9, n_trials=6)
        other = TrialConfig(small_graph, epsilon=0.3, seed=5, n_trials=4)
        alone = run_trial_batch(_factory, [cfg])[0]
        mixed = run_trial_batch(_factory, [other, cfg])[1]
        assert np.array_equal(alone.errors, mixed.errors)

    def test_summary_matches_manual_summary(self, small_graph):
        cfg = TrialConfig(small_graph, epsilon=1.0, seed=3, n_trials=16)
        result = run_trial_batch(_factory, [cfg])[0]
        expected = summarize_errors(result.errors, result.summary.true_value)
        assert result.summary == expected
        assert result.summary.true_value == 3.0  # components of the fixture

    def test_noise_scales_with_epsilon(self, small_graph):
        tight, loose = run_trial_batch(
            _factory,
            [
                TrialConfig(small_graph, epsilon=50.0, seed=1, n_trials=60),
                TrialConfig(small_graph, epsilon=0.05, seed=1, n_trials=60),
            ],
        )
        assert tight.summary.mean_abs_error < loose.summary.mean_abs_error

    def test_empty_batch(self):
        assert run_trial_batch(_factory, []) == []


class TestCompactGraphConfigs:
    def test_compact_graph_default_statistic(self, rng):
        cg = erdos_renyi_compact(300, 2.0 / 300, rng)
        cfg = TrialConfig(graph=cg, epsilon=10.0, seed=0, n_trials=5)
        result = run_trial_batch(_factory, [cfg])[0]
        assert result.summary.true_value == cg.f_cc()

    def test_full_algorithm_accepts_compact_graph(self, rng):
        """Algorithm 1 (extension + GEM + Laplace) must run on a
        CompactGraph config by coercing internally."""
        cg = erdos_renyi_compact(40, 0.08, rng)
        cfg = TrialConfig(graph=cg, epsilon=2.0, seed=4, n_trials=2)
        result = run_trial_batch(_private_cc_factory, [cfg])[0]
        assert result.summary.true_value == cg.f_cc()
        # Identical truths and noise streams vs the object-graph path.
        twin = TrialConfig(graph=cg.to_graph(), epsilon=2.0, seed=4, n_trials=2)
        twin_result = run_trial_batch(_private_cc_factory, [twin])[0]
        assert np.array_equal(result.errors, twin_result.errors)

    def test_compact_and_object_graphs_see_same_truth(self, rng):
        cg = erdos_renyi_compact(120, 2.0 / 120, rng)
        g = cg.to_graph()
        res_c, res_g = run_trial_batch(
            _factory,
            [
                TrialConfig(cg, epsilon=1.0, seed=11, n_trials=4),
                TrialConfig(g, epsilon=1.0, seed=11, n_trials=4),
            ],
        )
        assert res_c.summary.true_value == res_g.summary.true_value
        # Identical seeds and truths: identical noise streams too.
        assert np.array_equal(res_c.errors, res_g.errors)


class TestProcessPool:
    def test_parallel_matches_serial(self, small_graph):
        configs = [
            TrialConfig(small_graph, epsilon=e, seed=s, n_trials=6)
            for e in (0.5, 1.0, 4.0)
            for s in (0, 1)
        ]
        serial = run_trial_batch(_factory, configs)
        parallel = run_trial_batch(_factory, configs, max_workers=2)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.errors, b.errors)
            assert a.summary == b.summary

    def test_parallel_full_algorithm(self, rng):
        graph = planted_components([8, 10, 6], 0.4, rng)
        configs = [
            TrialConfig(graph, epsilon=2.0, seed=s, n_trials=3) for s in (0, 1)
        ]
        serial = run_trial_batch(_private_cc_factory, configs)
        parallel = run_trial_batch(_private_cc_factory, configs, max_workers=2)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.errors, b.errors)

    def test_invalid_max_workers(self, small_graph):
        cfg = TrialConfig(small_graph, epsilon=1.0, seed=1, n_trials=2)
        with pytest.raises(ValueError):
            run_trial_batch(_factory, [cfg], max_workers=0)


class TestLegacyRunner:
    def test_run_trials_still_works(self, small_graph, rng):
        mech = _LaplaceOnTruth(epsilon=5.0)
        errors = run_trials(mech, small_graph, 10, rng)
        assert errors.shape == (10,)

    def test_run_trials_accepts_compact(self, rng):
        cg = erdos_renyi_compact(50, 0.05, rng)
        errors = run_trials(_LaplaceOnTruth(epsilon=5.0), cg, 5, rng)
        assert errors.shape == (5,)
