"""CLI smoke tests for ``repro sweep`` / ``resume`` / ``report`` and the
compact-engine ``generate`` path."""

import csv
import json

import pytest

from repro.__main__ import main
from repro.analysis.report import ExperimentReport
from repro.graphs.io import read_edge_list


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(
        json.dumps(
            {
                "name": "cli-sweep",
                "description": "CLI smoke sweep",
                "graphs": [
                    {"family": "er", "sizes": [20], "params": {"c": 1.0}},
                    {"family": "grid", "sizes": [16]},
                ],
                "epsilons": [0.5, 1.0],
                "mechanisms": ["edge_dp"],
                "replicates": 2,
                "n_trials": 4,
                "base_seed": 9,
            }
        )
    )
    return str(path)


class TestSweepCommand:
    def test_sweep_writes_report_and_csv(self, tmp_path, spec_file, capsys):
        report = tmp_path / "out" / "report.json"
        table = tmp_path / "out" / "table.csv"
        code = main(
            ["sweep", "--spec", spec_file, "--store", str(tmp_path / "store"),
             "--report", str(report), "--csv", str(table), "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "8 of 8 cells done" in out
        data = ExperimentReport.read(report)
        assert data["experiment_id"] == "cli-sweep"
        assert len(data["records"]) == 8
        with open(table) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "family"
        assert len(rows) == 9

    def test_sweep_then_resume_recomputes_nothing(
        self, tmp_path, spec_file, capsys
    ):
        store = str(tmp_path / "store")
        main(["sweep", "--spec", spec_file, "--store", store, "--quiet",
              "--max-cells", "3"])
        capsys.readouterr()
        code = main(["resume", "--spec", spec_file, "--store", store, "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "(3 cached, 5 computed, 0 pending)" in out

    def test_resume_on_empty_store_fails(self, tmp_path, spec_file, capsys):
        code = main(
            ["resume", "--spec", spec_file, "--store", str(tmp_path / "none"),
             "--quiet"]
        )
        assert code == 1
        assert "nothing to resume" in capsys.readouterr().err

    def test_bad_spec_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"name": "x"}')
        code = main(
            ["sweep", "--spec", str(bad), "--store", str(tmp_path / "s")]
        )
        assert code == 1
        assert "bad sweep spec" in capsys.readouterr().err

    def test_progress_lines_on_stderr(self, tmp_path, spec_file, capsys):
        main(["sweep", "--spec", spec_file, "--store", str(tmp_path / "store")])
        err = capsys.readouterr().err
        assert "computed" in err and "[8/8]" in err


class TestReportCommand:
    def test_report_from_complete_store(self, tmp_path, spec_file, capsys):
        store = str(tmp_path / "store")
        main(["sweep", "--spec", spec_file, "--store", store, "--quiet"])
        capsys.readouterr()
        report = tmp_path / "report.json"
        code = main(
            ["report", "--spec", spec_file, "--store", store,
             "--report", str(report), "--table"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 missing" in out
        assert "mean_abs_error" in out  # the --table output
        assert len(ExperimentReport.read(report)["records"]) == 8

    def test_partial_store_refused_without_flag(
        self, tmp_path, spec_file, capsys
    ):
        store = str(tmp_path / "store")
        main(["sweep", "--spec", spec_file, "--store", store, "--quiet",
              "--max-cells", "2"])
        capsys.readouterr()
        code = main(["report", "--spec", spec_file, "--store", store])
        assert code == 1
        assert "missing from the store" in capsys.readouterr().err

    def test_partial_store_allowed_with_flag(self, tmp_path, spec_file, capsys):
        store = str(tmp_path / "store")
        main(["sweep", "--spec", spec_file, "--store", store, "--quiet",
              "--max-cells", "2"])
        capsys.readouterr()
        report = tmp_path / "partial.json"
        code = main(
            ["report", "--spec", spec_file, "--store", store,
             "--allow-partial", "--report", str(report)]
        )
        assert code == 0
        assert len(ExperimentReport.read(report)["records"]) == 2

    def test_report_identical_to_sweep_report(self, tmp_path, spec_file, capsys):
        store = str(tmp_path / "store")
        sweep_report = tmp_path / "sweep.json.out"
        main(["sweep", "--spec", spec_file, "--store", store, "--quiet",
              "--report", str(sweep_report)])
        assemble_report = tmp_path / "assemble.json.out"
        main(["report", "--spec", spec_file, "--store", store,
              "--report", str(assemble_report)])
        assert sweep_report.read_bytes() == assemble_report.read_bytes()


class TestCompactGenerate:
    @pytest.mark.parametrize(
        "args",
        [
            ["--family", "geometric", "--n", "300", "--radius", "0.05"],
            ["--family", "planted", "--n", "60", "--components", "6"],
            ["--family", "sbm", "--n", "80", "--blocks", "4",
             "--p-in", "0.1", "--p-out", "0.005"],
            ["--family", "ba", "--n", "50", "--m", "2"],
        ],
        ids=["geometric", "planted", "sbm", "ba"],
    )
    def test_new_compact_families(self, tmp_path, capsys, args):
        out = tmp_path / "g.edges"
        code = main(
            ["generate", *args, "--seed", "3", "--engine", "compact",
             "--output", str(out)]
        )
        assert code == 0
        graph = read_edge_list(out)
        assert graph.number_of_vertices() >= 1
        assert "wrote" in capsys.readouterr().out

    def test_ba_rejects_n_below_m_plus_one(self, tmp_path, capsys):
        code = main(
            ["generate", "--family", "ba", "--n", "2", "--m", "4",
             "--seed", "1", "--engine", "compact",
             "--output", str(tmp_path / "ba.edges")]
        )
        assert code == 1
        assert "n >= m + 1" in capsys.readouterr().err
        assert not (tmp_path / "ba.edges").exists()

    def test_object_engine_new_families(self, tmp_path, capsys):
        out = tmp_path / "sbm.edges"
        code = main(
            ["generate", "--family", "sbm", "--n", "40", "--blocks", "2",
             "--p-in", "0.2", "--p-out", "0.01", "--seed", "5",
             "--output", str(out)]
        )
        assert code == 0
        code = main(
            ["generate", "--family", "ba", "--n", "30", "--m", "2",
             "--seed", "5", "--output", str(tmp_path / "ba.edges")]
        )
        assert code == 0

    def test_er_compact_roundtrips(self, tmp_path, capsys):
        out = tmp_path / "er.edges"
        code = main(
            ["generate", "--family", "er", "--n", "500", "--p", "0.004",
             "--seed", "1", "--engine", "compact", "--output", str(out)]
        )
        assert code == 0
        graph = read_edge_list(out)
        assert graph.number_of_vertices() == 500

    def test_grid_compact_matches_object(self, tmp_path, capsys):
        compact_out = tmp_path / "grid_compact.edges"
        object_out = tmp_path / "grid_object.edges"
        main(["generate", "--family", "grid", "--n", "16", "--seed", "1",
              "--engine", "compact", "--output", str(compact_out)])
        main(["generate", "--family", "grid", "--n", "16", "--seed", "1",
              "--output", str(object_out)])
        assert read_edge_list(compact_out) == read_edge_list(object_out)

    def test_unsupported_family_fails(self, tmp_path, capsys):
        code = main(
            ["generate", "--family", "tree", "--n", "10", "--engine",
             "compact", "--output", str(tmp_path / "t.edges")]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "no vectorized sampler" in err
        assert "er, grid, geometric, planted, sbm, ba" in err

    def test_gzip_output_pipeline(self, tmp_path, capsys):
        out = tmp_path / "g.edges.gz"
        main(["generate", "--family", "er", "--n", "200", "--p", "0.01",
              "--seed", "3", "--engine", "compact", "--output", str(out)])
        assert out.read_bytes()[:2] == b"\x1f\x8b"
        assert main(["stats", "--input", str(out)]) == 0
        assert "vertices:                 200" in capsys.readouterr().out


class TestCompactFastPathCLI:
    def test_stats_on_string_labels_still_works(self, tmp_path, capsys):
        path = tmp_path / "named.edges"
        path.write_text("alice bob\ncarol\n")
        assert main(["stats", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "vertices:                 3" in out
        assert "connected components:     2" in out

    def test_count_on_compact_input(self, tmp_path, capsys):
        path = tmp_path / "g.edges"
        path.write_text("0 1\n2 3\n4\n")
        assert main(["count", "--input", path.as_posix(), "--seed", "7"]) == 0
        assert "private estimate" in capsys.readouterr().out
