"""Compact-native private pipeline: coercion guards and differential
agreement with the reference object-graph path.

The acceptance contract of the compact pipeline (PR 3 tentpole):

* ``PrivateConnectedComponents``/``PrivateSpanningForestSize`` run end
  to end on a :class:`CompactGraph` with **zero** object-graph coercion
  (hard-guarded via :func:`forbid_object_coercion`);
* for the same seed, the compact and object paths release
  **bit-identical** values — same GEM scores, same Δ̂, same extension
  value, same noisy release — because both canonicalize every component
  to the same local index arrays and call the same int-native LP core.
"""

import numpy as np
import pytest

from repro.core.algorithm import (
    PrivateConnectedComponents,
    PrivateSpanningForestSize,
)
from repro.core.extension import (
    CompactSpanningForestExtension,
    SpanningForestExtension,
    extension_for,
)
from repro.graphs.compact import (
    CompactGraph,
    forbid_object_coercion,
    object_coercion_count,
)
from repro.graphs.generators import (
    erdos_renyi_compact,
    grid_graph_compact,
    planted_components_compact,
    random_geometric_graph_compact,
    stochastic_block_model_compact,
    barabasi_albert_compact,
)
from repro.mechanisms.gem import power_of_two_grid


def _compact_workloads():
    rng = np.random.default_rng(20230413)
    yield "er-sparse", erdos_renyi_compact(240, 0.8 / 240, rng)
    yield "er-denser", erdos_renyi_compact(90, 2.0 / 90, rng)
    yield "grid", grid_graph_compact(7, 8)
    yield "planted", planted_components_compact([12, 9, 5, 1], 0.25, rng)
    yield "geometric", random_geometric_graph_compact(120, 0.07, rng)
    yield "sbm", stochastic_block_model_compact(
        [30, 25, 20], [[0.08, 0.004, 0.004], [0.004, 0.08, 0.004],
                       [0.004, 0.004, 0.08]], rng
    )
    yield "ba", barabasi_albert_compact(60, 2, rng)


class TestZeroCoercion:
    def test_end_to_end_release_is_compact_native(self):
        rng = np.random.default_rng(11)
        graph = erdos_renyi_compact(3000, 0.5 / 3000, rng)
        estimator = PrivateConnectedComponents(epsilon=1.0)
        before = object_coercion_count()
        with forbid_object_coercion():
            release = estimator.release(graph, np.random.default_rng(0))
        assert object_coercion_count() == before
        assert np.isfinite(release.value)
        grid = [float(c) for c in power_of_two_grid(3000)]
        assert release.spanning_forest.delta_hat in grid

    def test_spanning_forest_release_compact_native(self):
        rng = np.random.default_rng(13)
        graph = planted_components_compact([40, 30, 20], 0.15, rng)
        with forbid_object_coercion():
            release = PrivateSpanningForestSize(epsilon=2.0).release(
                graph, np.random.default_rng(1)
            )
        assert release.true_value == graph.spanning_forest_size()

    def test_guard_actually_fires(self):
        graph = grid_graph_compact(3, 3)
        with forbid_object_coercion():
            with pytest.raises(RuntimeError, match="coerced"):
                graph.to_graph()

    def test_counter_increments_on_conversion(self):
        graph = grid_graph_compact(2, 2)
        before = object_coercion_count()
        graph.to_graph()
        assert object_coercion_count() == before + 1


class TestDifferentialReleases:
    @pytest.mark.parametrize(
        "name,compact", list(_compact_workloads()), ids=lambda w: w if isinstance(w, str) else ""
    )
    def test_bit_identical_releases(self, name, compact):
        reference = compact.to_graph()
        seed = np.random.SeedSequence(99)
        compact_release = PrivateConnectedComponents(epsilon=1.0).release(
            compact, np.random.default_rng(seed)
        )
        object_release = PrivateConnectedComponents(epsilon=1.0).release(
            reference, np.random.default_rng(seed)
        )
        sf_c = compact_release.spanning_forest
        sf_o = object_release.spanning_forest
        assert sf_c.gem.q_values == sf_o.gem.q_values
        assert sf_c.gem.probabilities == sf_o.gem.probabilities
        assert sf_c.delta_hat == sf_o.delta_hat
        assert sf_c.extension_value == sf_o.extension_value
        assert compact_release.value == object_release.value
        assert compact_release.true_value == object_release.true_value

    def test_repeated_releases_reuse_extension_cache(self):
        rng = np.random.default_rng(5)
        compact = erdos_renyi_compact(150, 1.0 / 150, rng)
        estimator = PrivateConnectedComponents(epsilon=1.0)
        release_rng = np.random.default_rng(2)
        first = estimator.release(compact, release_rng)
        second = estimator.release(compact, release_rng)
        # Same true value, different noise draws.
        assert first.true_value == second.true_value
        assert first.value != second.value


class TestCompactExtension:
    def _graph_pair(self):
        rng = np.random.default_rng(23)
        compact = erdos_renyi_compact(200, 1.3 / 200, rng)
        return compact, compact.to_graph()

    def test_value_parity_with_object_extension(self):
        compact, reference = self._graph_pair()
        ce = CompactSpanningForestExtension(compact)
        oe = SpanningForestExtension(reference)
        for delta in (1, 2, 2.5, 4, 8, 32, 128):
            assert ce.value(delta) == oe.value(delta)

    def test_grid_pass_matches_single_values(self):
        compact, _ = self._graph_pair()
        ext = CompactSpanningForestExtension(compact)
        candidates = power_of_two_grid(200)
        grid_values = ext.values_for_grid(candidates)
        fresh = CompactSpanningForestExtension(compact)
        for c, value in zip(candidates, grid_values):
            assert fresh.value(c) == value

    def test_lemma_3_3_shape(self):
        compact, _ = self._graph_pair()
        ext = CompactSpanningForestExtension(compact)
        candidates = power_of_two_grid(200)
        values = ext.values_for_grid(candidates)
        # Underestimation and monotonicity in delta.
        assert all(v <= ext.true_value + 1e-9 for v in values)
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))
        # Exact once delta dominates the max degree.
        maxdeg = compact.max_degree()
        for c, v in zip(candidates, values):
            if c >= maxdeg:
                assert v == pytest.approx(ext.true_value)

    def test_edgeless_graph(self):
        compact = CompactGraph.from_edge_arrays(
            5, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        ext = CompactSpanningForestExtension(compact)
        assert ext.true_value == 0
        assert ext.value(1) == 0.0
        assert ext.gap(1) == 0.0

    def test_extension_for_dispatch(self):
        compact, reference = self._graph_pair()
        assert isinstance(
            extension_for(compact), CompactSpanningForestExtension
        )
        assert isinstance(extension_for(reference), SpanningForestExtension)

    def test_evaluated_deltas_cache(self):
        compact, _ = self._graph_pair()
        ext = CompactSpanningForestExtension(compact)
        ext.value(2)
        ext.value(2)
        ext.value(4)
        assert ext.evaluated_deltas() == [2.0, 4.0]

    def test_invalid_delta_rejected(self):
        compact, _ = self._graph_pair()
        with pytest.raises(ValueError, match="positive"):
            CompactSpanningForestExtension(compact).value(0)
