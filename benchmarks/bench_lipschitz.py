"""E8 — Remark 3.4: tightness of the Lipschitz constant of f_Δ.

The pair (G = Δ isolated vertices, G' = G + all-adjacent hub) realizes
|f_Δ(G') − f_Δ(G)| = Δ exactly.  The table sweeps Δ and also verifies
the Lipschitz *upper* bound on random node-neighbor pairs (both
directions of Lemma 3.3's Lipschitzness proof).
"""

from __future__ import annotations


from repro.core.extension import evaluate_lipschitz_extension
from repro.graphs.generators import empty_graph, erdos_renyi, with_hub

from ._util import emit_table, reset_results


def _run_tightness():
    reset_results("E8")
    rows = []
    for delta in (1, 2, 3, 5, 8):
        g = empty_graph(delta)
        g_hub = with_hub(g)
        low = evaluate_lipschitz_extension(g, delta)
        high = evaluate_lipschitz_extension(g_hub, delta)
        rows.append([delta, low, high, high - low, abs(high - low - delta) < 1e-6])
    emit_table(
        "E8",
        ["Δ", "f_Δ(Δ·K1)", "f_Δ(star)", "jump", "jump == Δ"],
        rows,
        "Remark 3.4: the Lipschitz constant Δ is achieved exactly",
    )
    return rows


def test_remark_3_4_tightness(benchmark):
    rows = benchmark.pedantic(_run_tightness, rounds=1, iterations=1)
    assert all(row[-1] for row in rows)


def _run_random_pairs(rng):
    violations = 0
    checked = 0
    worst_ratio = 0.0
    for _ in range(60):
        n = int(rng.integers(2, 8))
        g = erdos_renyi(n, float(rng.uniform(0.2, 0.8)), rng)
        delta = int(rng.integers(1, 4))
        value = evaluate_lipschitz_extension(g, delta)
        for v in g.vertex_list():
            smaller = evaluate_lipschitz_extension(g.without_vertex(v), delta)
            jump = abs(value - smaller)
            checked += 1
            worst_ratio = max(worst_ratio, jump / delta)
            if jump > delta + 1e-6:
                violations += 1
    emit_table(
        "E8",
        ["neighbor pairs checked", "Lipschitz violations", "worst jump/Δ"],
        [[checked, violations, worst_ratio]],
        "Lipschitz property on random node-neighbor pairs",
    )
    return checked, violations, worst_ratio


def test_lipschitz_random_pairs(benchmark, rng):
    checked, violations, worst = benchmark.pedantic(
        _run_random_pairs, args=(rng,), rounds=1, iterations=1
    )
    assert violations == 0
    assert worst <= 1.0 + 1e-9
