"""E2 — Section 1.1.4: Erdős–Rényi G(n, c/n) accuracy.

Paper claim: in the sparse regime ``np = c`` the graph has ``Ω(n)``
components and ``O(log n)`` maximum degree w.h.p., so the private
estimate of f_cc has additive error ``Õ(log n / ε)`` and relative error
``Õ(log² n / (εn))`` — in particular the *relative* error vanishes as n
grows.  We sweep n and c and verify both shapes.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithm import PrivateConnectedComponents
from repro.core.bounds import erdos_renyi_error_bound
from repro.graphs.components import number_of_connected_components
from repro.graphs.generators import erdos_renyi

from ._util import emit_table, reset_results

_TRIALS = 12
_EPSILON = 1.0


def _run_experiment(rng):
    reset_results("E2")
    rows = []
    for c in (0.5, 1.0, 2.0):
        for n in (100, 200, 400, 800):
            graph = erdos_renyi(n, c / n, rng)
            truth = number_of_connected_components(graph)
            estimator = PrivateConnectedComponents(epsilon=_EPSILON)
            errors = np.abs(
                [estimator.release(graph, rng).value - truth for _ in range(_TRIALS)]
            )
            median = float(np.median(errors))
            rows.append(
                [
                    c,
                    n,
                    graph.max_degree(),
                    truth,
                    median,
                    median / truth,
                    erdos_renyi_error_bound(n, _EPSILON),
                ]
            )
    emit_table(
        "E2",
        ["c", "n", "maxdeg", "true f_cc", "median|err|", "rel err",
         "ref bound"],
        rows,
        f"G(n, c/n): additive error ~ log n / eps, relative error -> 0 "
        f"(eps={_EPSILON}, {_TRIALS} trials)",
    )
    return rows


def test_erdos_renyi_scaling(benchmark, rng):
    rows = benchmark.pedantic(_run_experiment, args=(rng,), rounds=1, iterations=1)
    # f_cc = Omega(n): the count grows with n for each c.
    for c in (0.5, 1.0, 2.0):
        counts = [row[3] for row in rows if row[0] == c]
        assert counts[-1] > counts[0]
    # Relative error at n=800 is far below relative error at n=100 on
    # average across c (the paper's vanishing-relative-error claim).
    small = np.mean([row[5] for row in rows if row[1] == 100])
    large = np.mean([row[5] for row in rows if row[1] == 800])
    assert large < small
    # Additive error stays within the log-n reference curve.
    assert all(row[4] <= row[6] for row in rows)
