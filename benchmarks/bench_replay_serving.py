"""E17 — Replayed-workload serving throughput on a Zipf-skewed mix.

Acceptance benchmark for the workload-replay generator: a
:class:`~repro.experiments.replay.ReplaySpec` over a hot/cold pair of
``.npz`` graphs expands into a JSONL workload that a warm
:class:`~repro.service.ReleaseSession` must serve at a minimum
requests-per-second floor, while

* the expansion itself is **byte-deterministic** (two expansions of the
  same spec produce identical JSONL — the generator's whole contract),
* re-serving the identical workload through a fresh session yields
  **identical released values** (replayed requests carry explicit
  per-request seeds), and
* the Zipf skew materializes (the rank-0 hot graph receives strictly
  more requests than the cold one).

The workload shape mirrors what ``repro replay | repro serve-batch``
produces in the dataset-smoke CI job: mixed estimators and epsilons over
few graphs with a skewed hit distribution, which is exactly the regime
the session's per-graph caches are built for.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import time
from collections import Counter

import numpy as np

from repro.experiments.replay import ReplaySpec, ReplayTarget, write_jsonl
from repro.graphs.generators import erdos_renyi_compact
from repro.graphs.store import save_npz
from repro.service import ReleaseSession, serve_jsonl

from ._util import emit_table, reset_results

_N_HOT = int(os.environ.get("REPRO_BENCH_REPLAY_N", "50000"))
_N_COLD = max(_N_HOT // 4, 100)
_REQUESTS = int(os.environ.get("REPRO_BENCH_REPLAY_REQUESTS", "64"))
_SEED = 20231303
# Local acceptance bar; CI sets REPRO_BENCH_MIN_REPLAY_RPS lower
# because shared runners add wall-clock jitter.
_MIN_RPS = float(os.environ.get("REPRO_BENCH_MIN_REPLAY_RPS", "4.0"))


def _build_spec(workdir: str) -> ReplaySpec:
    hot = os.path.join(workdir, "hot.npz")
    cold = os.path.join(workdir, "cold.npz")
    save_npz(
        erdos_renyi_compact(_N_HOT, 0.35 / _N_HOT, np.random.default_rng(1)),
        hot,
    )
    save_npz(
        erdos_renyi_compact(_N_COLD, 0.35 / _N_COLD, np.random.default_rng(2)),
        cold,
    )
    return ReplaySpec(
        name="bench-replay",
        requests=_REQUESTS,
        targets=(
            ReplayTarget(graph=hot, estimators=("cc", "sf")),
            ReplayTarget(graph=cold, estimators=("cc", "sf")),
        ),
        epsilons=(0.5, 1.0, 2.0),
        zipf_s=1.1,
        seed=_SEED,
    )


def _run_experiment() -> list[list]:
    reset_results("E17")
    with tempfile.TemporaryDirectory(prefix="bench-replay-") as workdir:
        spec = _build_spec(workdir)

        expand_start = time.perf_counter()
        first = io.StringIO()
        count = write_jsonl(spec, first)
        expand_time = time.perf_counter() - expand_start
        assert count == _REQUESTS

        second = io.StringIO()
        write_jsonl(spec, second)
        assert first.getvalue() == second.getvalue(), (
            "replay expansion is not byte-deterministic"
        )

        lines = first.getvalue().splitlines()
        by_graph = Counter(json.loads(line)["graph"] for line in lines)
        hot_share = by_graph[spec.targets[0].graph] / _REQUESTS
        assert by_graph[spec.targets[0].graph] > by_graph[
            spec.targets[1].graph
        ], "Zipf rank-0 target did not dominate the workload"

        serve_start = time.perf_counter()
        responses = list(serve_jsonl(lines, ReleaseSession()))
        serve_time = time.perf_counter() - serve_start
        errors = [r for r in responses if "error" in r]
        assert not errors, f"replayed workload hit errors: {errors[:3]}"

        # Replayed requests pin their own seeds, so a fresh session
        # re-serves the exact same floats.
        replay_values = [r["value"] for r in serve_jsonl(lines, ReleaseSession())]
        assert replay_values == [r["value"] for r in responses], (
            "re-serving the replayed workload changed released values"
        )

    rps = _REQUESTS / serve_time
    rows = [
        [
            _N_HOT,
            _N_COLD,
            _REQUESTS,
            hot_share,
            expand_time,
            serve_time,
            serve_time / _REQUESTS,
            rps,
        ]
    ]
    emit_table(
        "E17",
        [
            "n hot",
            "n cold",
            "requests",
            "hot share",
            "expand s",
            "serve s",
            "s/req",
            "req/s",
        ],
        rows,
        f"Zipf(s={spec.zipf_s:g}) replay of {_REQUESTS} mixed cc/sf "
        f"requests over 2 graphs served by one warm session "
        f"(required >= {_MIN_RPS:g} req/s; expansion byte-deterministic, "
        f"re-serve bit-identical)",
    )

    assert rps >= _MIN_RPS, (
        f"replay serving throughput {rps:.1f} req/s below the "
        f"{_MIN_RPS:g} req/s acceptance bar"
    )
    return rows


def test_replay_serving_throughput(benchmark):
    benchmark.pedantic(_run_experiment, rounds=1, iterations=1)
