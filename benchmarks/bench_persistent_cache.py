"""E12 — Persistent extension cache: cold-restart vs warm-restart serving.

Acceptance benchmark for the PR-5 tentpole: a **restarted**
``repro serve-batch`` process pointed at a warm ``--cache-dir`` must
answer 32 mixed ``(estimator, epsilon)`` queries spread over 4
previously-served ``n = 1e5`` graphs at least 5× faster than a cold
restart (no persistent cache: every graph pays its full
Lipschitz-extension build again), while

* releasing **bit-identical** values to the serial, cache-less path for
  identical per-query RNG streams (extension values are deterministic,
  so disk warm-starting cannot change any released float), and
* performing **zero** compact→object coercions on the warm path
  (hard-guarded via ``forbid_object_coercion``).

Restart is simulated faithfully: each leg uses a *fresh*
:class:`~repro.service.ReleaseSession` (empty in-memory LRU) and the
process-wide LP memo is cleared, so the only state a leg can inherit is
what the tentpole claims survives — the content-addressed tables under
the cache directory.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.graphs.compact import forbid_object_coercion, object_coercion_count
from repro.graphs.generators import erdos_renyi_compact
from repro.lp.forest_core import clear_solve_cache
from repro.service import ReleaseSession

from ._util import emit_table, reset_results

_N = int(os.environ.get("REPRO_BENCH_RESTART_N", "100000"))
_C = 0.35
_N_GRAPHS = 4
_N_QUERIES = 32
_BASE_SEED = 20230705
# Local acceptance bar is 5x; CI sets REPRO_BENCH_MIN_RESTART_SPEEDUP
# lower because shared runners add wall-clock jitter.
_REQUIRED_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_RESTART_SPEEDUP", "5.0")
)

# 32 mixed queries round-robining the 4 hot graphs: both Algorithm-1
# statistics across a small epsilon menu — the multi-tenant shape a
# restarted serving process sees.
_QUERIES = [
    (i % _N_GRAPHS, ("cc", "sf")[i % 2], (0.25, 0.5, 1.0, 2.0)[(i // 2) % 4])
    for i in range(_N_QUERIES)
]


def _query_rng(i: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence(_BASE_SEED, spawn_key=(i,))
    )


def _serve_all(session: ReleaseSession, graphs) -> list[float]:
    values = []
    for i, (g, name, epsilon) in enumerate(_QUERIES):
        release = session.query(
            name, epsilon=epsilon, graph=graphs[g], rng=_query_rng(i)
        )
        values.append(release.value)
    return values


def _run_experiment(rng, tmp_dir):
    reset_results("E12")
    cache_dir = os.path.join(tmp_dir, "extension-cache")

    graphs = [
        erdos_renyi_compact(_N, _C / _N, rng) for _ in range(_N_GRAPHS)
    ]

    # Populate pass (untimed): the "previous run" that served these
    # graphs and left its warm tables under --cache-dir.
    clear_solve_cache()
    populate_session = ReleaseSession(cache_dir=cache_dir)
    populate_values = _serve_all(populate_session, graphs)
    assert populate_session.cache.stats.stores == _N_GRAPHS

    # Cold restart: fresh session, no persistent cache — the serial,
    # cache-less path every restart used to pay.
    clear_solve_cache()
    cold_session = ReleaseSession()
    cold_start = time.perf_counter()
    cold_values = _serve_all(cold_session, graphs)
    cold_time = time.perf_counter() - cold_start

    # Warm restart: fresh session, same cache directory; the only
    # carried-over state is the on-disk tables.  Guarded against any
    # object-graph fallback.
    clear_solve_cache()
    warm_session = ReleaseSession(cache_dir=cache_dir)
    coercions_before = object_coercion_count()
    with forbid_object_coercion():
        warm_start = time.perf_counter()
        warm_values = _serve_all(warm_session, graphs)
        warm_time = time.perf_counter() - warm_start
    assert object_coercion_count() == coercions_before, (
        "warm-restart serving performed an object-graph coercion"
    )

    # Bit-identity: disk warm-starting changes nothing about the values.
    assert warm_values == cold_values == populate_values, (
        "persistent-cache releases diverged from the cache-less path"
    )
    assert warm_session.stats.disk_warm_starts == _N_GRAPHS
    assert warm_session.cache.stats.hits == _N_GRAPHS

    speedup = cold_time / warm_time
    rows = [
        [
            _N,
            _N_GRAPHS,
            _N_QUERIES,
            cold_time,
            warm_time,
            cold_time / _N_QUERIES,
            warm_time / _N_QUERIES,
            speedup,
        ]
    ]
    emit_table(
        "E12",
        [
            "n",
            "graphs",
            "queries",
            "cold-restart s",
            "warm-restart s",
            "cold s/q",
            "warm s/q",
            "speedup",
        ],
        rows,
        f"32 mixed queries over {_N_GRAPHS} previously-served "
        f"G(n, {_C:g}/n) graphs: cold restart (no cache dir) vs warm "
        f"restart (persistent extension cache) "
        f"(required speedup >= {_REQUIRED_SPEEDUP:g}x)",
    )

    assert speedup >= _REQUIRED_SPEEDUP, (
        f"cold-restart speedup {speedup:.1f}x below the "
        f"{_REQUIRED_SPEEDUP:g}x acceptance bar"
    )
    return rows


def test_persistent_cache_restart_speedup(benchmark, rng, tmp_path):
    benchmark.pedantic(
        _run_experiment, args=(rng, str(tmp_path)), rounds=1, iterations=1
    )
