"""E10 — Theorem 3.5: the Generalized Exponential Mechanism's selection.

Measures err(Δ̂) against min_Δ err(Δ) over many runs (the theorem bounds
the ratio by O(ln(ln Δmax / β)) with probability 1 − β) and runs the
ablation called out in DESIGN.md: GEM vs the plain exponential
mechanism on raw scores vs a fixed Δ = Δmax policy.  GEM's advantage
appears exactly when the optimal Δ is far below Δmax.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.algorithm import PrivateSpanningForestSize
from repro.core.extension import SpanningForestExtension
from repro.graphs.components import spanning_forest_size
from repro.graphs.generators import random_forest, star_plus_isolated
from repro.mechanisms.exponential import exponential_mechanism
from repro.mechanisms.gem import (
    generalized_exponential_mechanism,
    power_of_two_grid,
)

from ._util import emit_table, reset_results

_RUNS = 150


def _q_table(graph, epsilon_noise):
    extension = SpanningForestExtension(graph)
    candidates = power_of_two_grid(graph.number_of_vertices())
    return candidates, {
        c: extension.gap(c) + c / epsilon_noise for c in candidates
    }


def _run_selection_quality(rng):
    reset_results("E10")
    rows = []
    for name, graph in [
        ("forest 80/20", random_forest(80, 20, rng)),
        ("star20+iso40", star_plus_isolated(20, 40)),
    ]:
        epsilon = 1.0
        candidates, q = _q_table(graph, epsilon_noise=epsilon / 2)
        best = min(q.values())
        beta = 0.1
        ratios = []
        for _ in range(_RUNS):
            result = generalized_exponential_mechanism(
                candidates, q.__getitem__, epsilon / 2, beta, rng
            )
            ratios.append(q[result.selected] / best)
        k = len(candidates) - 1
        theorem_factor = math.log(max(k, 2) / beta)
        rows.append(
            [
                name,
                best,
                float(np.median(ratios)),
                float(np.quantile(ratios, 0.9)),
                theorem_factor,
            ]
        )
    emit_table(
        "E10",
        ["family", "min err(Δ)", "median ratio", "q90 ratio",
         "ln(k/β) reference"],
        rows,
        f"GEM selection quality over {_RUNS} runs (eps=0.5 selection)",
    )
    return rows


def test_gem_selection_quality(benchmark, rng):
    rows = benchmark.pedantic(
        _run_selection_quality, args=(rng,), rounds=1, iterations=1
    )
    for row in rows:
        # Median selected error within the theorem's log-factor envelope.
        assert row[2] <= row[4] * 2


def _run_ablation(rng):
    """GEM vs plain EM vs fixed Δ = Δmax on the final release error."""
    graph = random_forest(80, 20, rng)
    truth = spanning_forest_size(graph)
    epsilon = 1.0
    trials = 40

    gem_estimator = PrivateSpanningForestSize(epsilon=epsilon)
    gem_errors = [
        abs(gem_estimator.release(graph, rng).value - truth) for _ in range(trials)
    ]

    # Plain EM ablation: scores q_i with a common worst-case sensitivity
    # Δmax (what the un-generalized mechanism must assume).
    extension = SpanningForestExtension(graph)
    candidates = power_of_two_grid(graph.number_of_vertices())
    q = {c: extension.gap(c) + 2 * c / epsilon for c in candidates}
    plain_errors = []
    for _ in range(trials):
        index = exponential_mechanism(
            [q[c] for c in candidates], float(max(candidates)), epsilon / 2, rng
        )
        delta = candidates[index]
        noise = rng.laplace(scale=2 * delta / epsilon)
        plain_errors.append(abs(extension.value(delta) + noise - truth))

    # Fixed Δ = Δmax: exact extension, maximal noise.
    delta_max = float(max(candidates))
    fixed_errors = [
        abs(extension.value(delta_max) + rng.laplace(scale=2 * delta_max / epsilon) - truth)
        for _ in range(trials)
    ]
    rows = [
        ["GEM (Algorithm 4)", float(np.median(gem_errors))],
        ["plain EM (sensitivity Δmax)", float(np.median(plain_errors))],
        ["fixed Δ = Δmax", float(np.median(fixed_errors))],
    ]
    emit_table(
        "E10",
        ["selection policy", "median |release error|"],
        rows,
        "ablation: GEM vs plain EM vs fixed Δmax (forest 80/20, eps=1)",
    )
    return rows


def test_gem_ablation(benchmark, rng):
    rows = benchmark.pedantic(_run_ablation, args=(rng,), rounds=1, iterations=1)
    gem, plain, fixed = (row[1] for row in rows)
    # GEM beats the fixed-Δmax policy decisively on this easy instance.
    assert gem < fixed / 3
    # And is no worse than ~2x the plain EM (usually much better).
    assert gem <= max(plain * 2, fixed)
