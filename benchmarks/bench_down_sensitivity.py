"""E4 — Lemma 1.7: down-sensitivity of f_sf equals the star number.

Regenerates the lemma as a table: for an exhaustive sweep of tiny graphs
plus named families, compare the brute-force down-sensitivity (maximum
change of f_sf over node-neighboring induced-subgraph pairs) with the
induced-star number s(G); Lemma 1.6's ``Δ* ≤ DS + 1`` is checked on the
same instances.
"""

from __future__ import annotations

from itertools import combinations


from repro.core.down_sensitivity import (
    down_sensitivity_brute_force,
    down_sensitivity_spanning_forest,
)
from repro.graphs.components import spanning_forest_size
from repro.graphs.forests import min_spanning_forest_degree_exact
from repro.graphs.generators import (
    caterpillar_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    star_graph,
    star_of_stars,
)
from repro.graphs.graph import Graph

from ._util import emit_table, reset_results


def _exhaustive_graphs(n: int):
    """Every labelled graph on n vertices (used for n <= 5)."""
    pairs = list(combinations(range(n), 2))
    for mask in range(2 ** len(pairs)):
        edges = [pairs[i] for i in range(len(pairs)) if mask >> i & 1]
        yield Graph(vertices=range(n), edges=edges)


def _run_exhaustive():
    reset_results("E4")
    rows = []
    for n in (2, 3, 4):
        total = 0
        agree = 0
        lemma16 = 0
        for g in _exhaustive_graphs(n):
            total += 1
            ds = down_sensitivity_brute_force(g, spanning_forest_size)
            s = down_sensitivity_spanning_forest(g)
            if ds == s:
                agree += 1
            if g.is_empty() or min_spanning_forest_degree_exact(g) <= ds + 1:
                lemma16 += 1
        rows.append([n, total, agree, lemma16])
    emit_table(
        "E4",
        ["n", "graphs", "DS == s(G)", "Δ* <= DS+1"],
        rows,
        "Lemma 1.7 and Lemma 1.6 verified exhaustively on all labelled graphs",
    )
    return rows


def test_lemma_1_7_exhaustive(benchmark):
    rows = benchmark.pedantic(_run_exhaustive, rounds=1, iterations=1)
    for n, total, agree, lemma16 in rows:
        assert agree == total, f"Lemma 1.7 failed for some n={n} graph"
        assert lemma16 == total, f"Lemma 1.6 failed for some n={n} graph"


def _run_families(rng):
    families = [
        ("path_8", path_graph(8)),
        ("cycle_8", cycle_graph(8)),
        ("star_7", star_graph(7)),
        ("K6", complete_graph(6)),
        ("K_{2,4}", complete_bipartite_graph(2, 4)),
        ("grid_3x3", grid_graph(3, 3)),
        ("caterpillar_3x2", caterpillar_graph(3, 2)),
        ("star_of_stars_3x2", star_of_stars(3, 2)),
        ("G(9,.3)", erdos_renyi(9, 0.3, rng)),
        ("G(9,.6)", erdos_renyi(9, 0.6, rng)),
    ]
    rows = []
    for name, g in families:
        ds_brute = down_sensitivity_brute_force(g, spanning_forest_size)
        s = down_sensitivity_spanning_forest(g)
        rows.append([name, g.number_of_vertices(), g.number_of_edges(),
                     ds_brute, s, ds_brute == s])
    emit_table(
        "E4",
        ["family", "n", "m", "DS (brute force)", "s(G)", "equal"],
        rows,
        "Lemma 1.7 on named families",
    )
    return rows


def test_lemma_1_7_families(benchmark, rng):
    rows = benchmark.pedantic(_run_families, args=(rng,), rounds=1, iterations=1)
    assert all(row[-1] for row in rows)


def _run_random_sweep(rng):
    checked = 0
    agreements = 0
    for _ in range(120):
        n = int(rng.integers(3, 9))
        p = float(rng.random())
        g = erdos_renyi(n, p, rng)
        ds = down_sensitivity_brute_force(g, spanning_forest_size)
        s = down_sensitivity_spanning_forest(g)
        checked += 1
        agreements += int(ds == s)
    emit_table(
        "E4",
        ["random graphs checked", "DS == s(G)"],
        [[checked, agreements]],
        "Lemma 1.7 on random G(n, p), n in [3, 8], p uniform",
    )
    return checked, agreements


def test_lemma_1_7_random(benchmark, rng):
    checked, agreements = benchmark.pedantic(
        _run_random_sweep, args=(rng,), rounds=1, iterations=1
    )
    assert agreements == checked
