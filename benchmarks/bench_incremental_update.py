"""E15 — Incremental graph updates: edit-batch serving vs full rebuild.

Acceptance benchmark for the PR-8 tentpole: after a small edit batch on
a previously-served ``n = 1e5`` graph, a fresh serving process with the
component-promoted extension cache must release at least **10×** faster
than a cold full rebuild of the edited graph — while releasing
**bit-identical** values (component-level cache reuse cannot change any
released float) and performing **zero** compact→object coercions on the
incremental path.

Workload shape: the streaming contact-graph scenario.  The hard kernel
work lives in ``n/2000`` planted communities of 50 vertices at average
degree 3 (dense enough that Algorithm-3 repair fails on a wide Δ band
and the component LP runs); the rest of the vertex set is isolated
padding — realistic for contact graphs, and free on both legs since
edgeless components never enter the extension engine.  The edit batch
touches two communities and links one new contact pair; every other
component's value table is promoted content-addressed state, so the
incremental leg pays only the array-level component split, the
fingerprint lookups, and the two touched components' LP work.

Restart is simulated faithfully, exactly as in E12: each timed leg uses
a fresh :class:`~repro.service.ReleaseSession` and a cleared
process-wide LP memo, so the only state the incremental leg inherits is
the content-addressed component tables under the cache directory.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.graphs.compact import (
    CompactGraph,
    forbid_object_coercion,
    object_coercion_count,
)
from repro.graphs.generators import planted_components_compact
from repro.lp.forest_core import clear_solve_cache
from repro.service import ReleaseSession

from ._util import emit_table, reset_results

_N = int(os.environ.get("REPRO_BENCH_INCREMENTAL_N", "100000"))
_COMMUNITY_SIZE = 50
_COMMUNITY_DEGREE = 3.0
_BASE_SEED = 20230808
# Local acceptance bar is 10x; CI sets REPRO_BENCH_MIN_INCREMENTAL_SPEEDUP
# lower because shared runners add wall-clock jitter.
_REQUIRED_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_INCREMENTAL_SPEEDUP", "10.0")
)


def _streaming_graph(rng: np.random.Generator) -> CompactGraph:
    """``n/2000`` hard communities plus isolated padding to ``_N``."""
    communities = max(_N // 2000, 6)
    core = planted_components_compact(
        [_COMMUNITY_SIZE] * communities,
        _COMMUNITY_DEGREE / _COMMUNITY_SIZE,
        rng,
    )
    u, v = core.edge_arrays()
    return CompactGraph.from_edge_arrays(_N, u, v)


def _serve(session: ReleaseSession, graph: CompactGraph) -> float:
    release = session.query(
        "cc",
        epsilon=1.0,
        graph=graph,
        rng=np.random.default_rng(_BASE_SEED),
    )
    return release.value


def _run_experiment(tmp_dir):
    reset_results("E15")
    cache_dir = os.path.join(tmp_dir, "extension-cache")
    rng = np.random.default_rng(_BASE_SEED)
    graph = _streaming_graph(rng)

    # Populate pass (untimed): the run that served the pre-edit graph
    # and promoted its per-component tables to the cache directory.
    clear_solve_cache()
    populate_session = ReleaseSession(cache_dir=cache_dir)
    _serve(populate_session, graph)
    assert populate_session.stats.component_promotions > 0

    # A small edit batch: rewire inside one community, delete one edge
    # of another, link one new contact pair in the padding.
    eu, ev = graph.edge_arrays()
    edited = graph.apply_edits(
        inserts=[(3, 7), (_N - 2, _N - 1)],
        deletes=[(int(eu[0]), int(ev[0]))],
    )
    assert edited.inserted + edited.deleted > 0

    # Incremental update: fresh session, same cache directory.  Only
    # the components touched by the edit batch may pay LP work; guarded
    # against any object-graph fallback.
    clear_solve_cache()
    incremental_session = ReleaseSession(cache_dir=cache_dir)
    coercions_before = object_coercion_count()
    with forbid_object_coercion():
        incremental_start = time.perf_counter()
        incremental_value = _serve(incremental_session, edited.graph)
        incremental_time = time.perf_counter() - incremental_start
    assert object_coercion_count() == coercions_before, (
        "incremental serving performed an object-graph coercion"
    )
    assert incremental_session.stats.component_hits > 0, (
        "incremental leg reused no component tables"
    )
    assert (
        incremental_session.stats.component_misses
        <= len(edited.touched_new) + 1
    ), "incremental leg missed more components than the edits touched"

    # Full rebuild: fresh session, no cache, no promotion — the cost
    # every edit used to pay when one insert invalidated everything.
    clear_solve_cache()
    rebuild_session = ReleaseSession(component_promotion=False)
    rebuild_start = time.perf_counter()
    rebuild_value = _serve(rebuild_session, edited.graph)
    rebuild_time = time.perf_counter() - rebuild_start

    # Bit-identity: component-level reuse changes nothing released.
    assert incremental_value == rebuild_value, (
        "incremental release diverged from the cold full rebuild"
    )

    speedup = rebuild_time / incremental_time
    rows = [
        [
            _N,
            graph.number_of_edges(),
            edited.inserted + edited.deleted,
            len(edited.touched_old),
            rebuild_time,
            incremental_time,
            speedup,
        ]
    ]
    emit_table(
        "E15",
        [
            "n",
            "edges",
            "edits",
            "touched",
            "rebuild s",
            "incremental s",
            "speedup",
        ],
        rows,
        "one release after a small edit batch on a previously-served "
        "streaming contact graph: cold full rebuild vs component-level "
        f"cache promotion (required speedup >= {_REQUIRED_SPEEDUP:g}x)",
    )

    assert speedup >= _REQUIRED_SPEEDUP, (
        f"incremental-update speedup {speedup:.1f}x below the "
        f"{_REQUIRED_SPEEDUP:g}x acceptance bar"
    )
    return rows


def test_incremental_update_speedup(benchmark, tmp_path):
    benchmark.pedantic(
        _run_experiment, args=(str(tmp_path),), rounds=1, iterations=1
    )
