"""E3 — Section 1.1.4: random geometric graphs.

Paper claims: (i) a geometric graph has no induced 6-star, hence
``s(G) ≤ 5`` and a spanning 6-forest exists (alternative proof via
Lemma 1.8); (ii) the private estimate of f_cc therefore has additive
error ``Õ(ln ln n / ε)`` — essentially flat in n and in density.

We verify the structural bound on every sampled instance, run the
Algorithm-3 construction with Δ = 6 (it must succeed), and sweep n and
the radius to show the flat error profile.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithm import PrivateConnectedComponents
from repro.core.bounds import geometric_error_bound
from repro.graphs.components import number_of_connected_components
from repro.graphs.forests import forest_max_degree, repair_spanning_forest
from repro.graphs.generators import random_geometric_graph
from repro.graphs.stars import star_number

from ._util import emit_table, reset_results

_TRIALS = 12
_EPSILON = 1.0


def _run_experiment(rng):
    reset_results("E3")
    rows = []
    for n in (100, 200, 400):
        for radius in (0.05, 0.1):
            graph = random_geometric_graph(n, radius, rng)
            s = star_number(graph)
            repaired = repair_spanning_forest(graph, 6)
            truth = number_of_connected_components(graph)
            estimator = PrivateConnectedComponents(epsilon=_EPSILON)
            errors = np.abs(
                [estimator.release(graph, rng).value - truth for _ in range(_TRIALS)]
            )
            rows.append(
                [
                    n,
                    radius,
                    graph.max_degree(),
                    s,
                    repaired.forest is not None
                    and forest_max_degree(repaired.forest) <= 6,
                    truth,
                    float(np.median(errors)),
                    geometric_error_bound(n, _EPSILON),
                ]
            )
    emit_table(
        "E3",
        ["n", "radius", "maxdeg", "s(G)", "6-forest", "true f_cc",
         "median|err|", "ref bound"],
        rows,
        f"random geometric graphs: s(G) <= 5, flat Õ(ln ln n) error "
        f"(eps={_EPSILON}, {_TRIALS} trials)",
    )
    return rows


def test_geometric_graphs(benchmark, rng):
    rows = benchmark.pedantic(_run_experiment, args=(rng,), rounds=1, iterations=1)
    # Structural claims hold on every instance.
    assert all(row[3] <= 5 for row in rows)          # no induced 6-star
    assert all(row[4] for row in rows)               # spanning 6-forest found
    # Error within the fixed Δ*=6 reference bound everywhere.
    assert all(row[6] <= row[7] for row in rows)
    # Flatness: quadrupling n does not even double the median error
    # envelope (compare the same radius).
    for radius in (0.05, 0.1):
        errs = [row[6] for row in rows if row[1] == radius]
        assert max(errs) <= 2 * max(min(errs), 2.0)
