"""E14 — Telemetry overhead gate: instrumented serving must stay cheap.

Acceptance benchmark for the PR-7 tentpole: the telemetry layer
(always-on counters plus span tracing with a live tracer installed)
may cost at most ``REPRO_BENCH_MAX_TELEMETRY_OVERHEAD`` (default 5%)
on the warm 32-query session workload from E11 — and must release
**bit-identical** values either way (spans read only ``perf_counter``;
they never touch RNG state).

Both legs run the identical warm-session loop; the only difference is
whether a tracer is enabled.  Each leg takes the best of
``_REPEATS`` passes so a single scheduler hiccup cannot fail the gate,
and the baseline leg re-measures with telemetry genuinely off (module
global cleared), not merely unused.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro import telemetry
from repro.graphs.generators import erdos_renyi_compact
from repro.lp.forest_core import clear_solve_cache
from repro.service import ReleaseSession

from ._util import emit_table, reset_results

_N = int(os.environ.get("REPRO_BENCH_TELEMETRY_N", "100000"))
_C = 0.35
_N_QUERIES = 32
_BASE_SEED = 20230413
# Local acceptance bar is 5%; CI sets REPRO_BENCH_MAX_TELEMETRY_OVERHEAD
# higher because shared runners add wall-clock jitter on a denominator
# of milliseconds.
_MAX_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_MAX_TELEMETRY_OVERHEAD", "0.05")
)
_REPEATS = 3

_QUERIES = [
    (("cc", "sf")[i % 2], (0.25, 0.5, 1.0, 2.0)[(i // 2) % 4])
    for i in range(_N_QUERIES)
]


def _query_rng(i: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence(_BASE_SEED, spawn_key=(i,))
    )


def _best_of(session, graph, repeats: int) -> tuple[list[float], float]:
    """Best (min) wall time over ``repeats`` warm passes."""
    best = None
    values = None
    for _ in range(repeats):
        pass_values, seconds = _serve_warm_on(session, graph)
        if best is None or seconds < best:
            best = seconds
        if values is None:
            values = pass_values
        else:
            assert pass_values == values, "warm passes diverged"
    return values, best


def _serve_warm_on(session, graph) -> tuple[list[float], float]:
    values = []
    start = time.perf_counter()
    for i, (name, epsilon) in enumerate(_QUERIES):
        release = session.query(
            name, epsilon=epsilon, graph=graph, rng=_query_rng(i)
        )
        values.append(release.value)
    return values, time.perf_counter() - start


def _run_experiment(rng):
    reset_results("E14")

    graph = erdos_renyi_compact(_N, _C / _N, rng)

    # Shared warmup: build the extension table once so both legs
    # measure pure hot-path serving (the tentpole's target regime).
    session = ReleaseSession()
    clear_solve_cache()
    session.query("cc", epsilon=1.0, graph=graph, rng=_query_rng(0))

    # Leg 1: telemetry off (no tracer; span() returns the shared null).
    assert not telemetry.enabled()
    off_values, off_time = _best_of(session, graph, _REPEATS)

    # Leg 2: telemetry on — a live tracer with a sink, the most
    # expensive configuration the serving CLI installs.
    sunk = []
    tracer = telemetry.Tracer(
        keep_spans=False, sink=sunk.append, sink_max_depth=0
    )
    with telemetry.tracing(tracer):
        on_values, on_time = _best_of(session, graph, _REPEATS)
    assert not telemetry.enabled()

    # Tracing observed every release (one root span per query per pass).
    assert len(sunk) == _N_QUERIES * _REPEATS
    # Bit-identity: enabling telemetry changes no released value.
    assert on_values == off_values, (
        "telemetry changed released values"
    )

    overhead = on_time / off_time - 1.0
    rows = [
        [
            _N,
            graph.number_of_edges(),
            _N_QUERIES,
            off_time,
            on_time,
            overhead,
            _MAX_OVERHEAD,
        ]
    ]
    emit_table(
        "E14",
        [
            "n",
            "m",
            "queries",
            "off s",
            "on s",
            "overhead",
            "gate",
        ],
        rows,
        f"warm 32-query session on G(n, {_C:g}/n): telemetry off vs "
        f"tracer+sink enabled (gate: overhead <= {_MAX_OVERHEAD:.0%})",
    )

    assert overhead <= _MAX_OVERHEAD, (
        f"telemetry overhead {overhead:.1%} above the "
        f"{_MAX_OVERHEAD:.0%} acceptance gate"
    )
    return rows


def test_telemetry_overhead_gate(benchmark, rng):
    benchmark.pedantic(_run_experiment, args=(rng,), rounds=1, iterations=1)
