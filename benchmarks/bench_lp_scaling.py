"""E11 — Lemma 3.3(2): polynomial-time evaluability of f_Δ.

Uses pytest-benchmark's actual timing machinery (several rounds) to
measure the evaluator across sizes, solver methods, and the fast-path
ablation called out in DESIGN.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import erdos_renyi, grid_graph, random_geometric_graph
from repro.lp.forest_lp import forest_polytope_value

from ._util import emit_table, reset_results


@pytest.mark.parametrize("n", [30, 60, 120])
def test_er_scaling(benchmark, n):
    """Evaluation time vs n on sparse ER graphs (Δ = 2)."""
    graph = erdos_renyi(n, 2.0 / n, np.random.default_rng(n))
    result = benchmark(lambda: forest_polytope_value(graph, 2))
    assert result.value >= 0


@pytest.mark.parametrize("method", ["auto", "cutting_plane", "column_generation"])
def test_method_comparison(benchmark, method):
    """The three solvers on one moderate instance (they agree; timing
    differs)."""
    graph = erdos_renyi(24, 0.12, np.random.default_rng(3))
    value = benchmark(
        lambda: forest_polytope_value(
            graph, 2, method=method, use_fast_paths=False, max_rounds=200
        ).value
    )
    reference = forest_polytope_value(graph, 2, method="auto").value
    assert value == pytest.approx(reference, abs=1e-4)


def test_fast_path_ablation(benchmark):
    """Fast paths vs forced LP on a grid where repair certifies Δ = 3."""
    graph = grid_graph(8, 8)

    def both():
        fast = forest_polytope_value(graph, 3, use_fast_paths=True)
        return fast

    result = benchmark(both)
    assert result.fast_path_components == 1
    slow = forest_polytope_value(graph, 3, use_fast_paths=False)
    assert slow.value == pytest.approx(result.value, abs=1e-4)


def test_geometric_summary_table(benchmark, rng):
    """One summary table for the record: values, gaps, statuses across Δ
    on a mid-size geometric graph."""
    reset_results("E11")
    graph = random_geometric_graph(150, 0.08, rng)

    def run():
        rows = []
        for delta in (1, 2, 4, 8, 16):
            result = forest_polytope_value(graph, delta)
            rows.append(
                [delta, result.value, result.gap, result.lp_rounds,
                 result.status[:40]]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "E11",
        ["Δ", "f_Δ", "certified gap", "solver rounds", "status"],
        rows,
        "evaluator summary on RGG(150, 0.08)",
    )
    values = [row[1] for row in rows]
    gaps = [row[2] for row in rows]
    # Monotone in delta up to certified gaps.
    for (a, ga), (b, _gb) in zip(zip(values, gaps), list(zip(values, gaps))[1:]):
        assert a <= b + ga + 1e-6
