"""E9 — Motivation (Sections 1 and 1.2): the paper's algorithm vs baselines.

Who wins where:

* **edge-DP Laplace** — the weak-privacy reference point with Θ(1/ε)
  error;
* **naive node-DP Laplace** — noise scaled to the worst-case global
  sensitivity (≈ n), the strawman that makes node privacy look
  impossible;
* **the paper's algorithm** — node privacy with instance-based error.

The shape claim to reproduce: the paper's estimator beats the naive
node-DP baseline by orders of magnitude on structured graphs (factor
roughly n/Δ*), while paying only a modest premium over edge privacy.
A crossover row is included: on a dense hub graph (Δ* ≈ n) the
advantage over naive noise disappears, matching the lower-bound
discussion in the introduction.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithm import PrivateConnectedComponents
from repro.core.baselines import (
    EdgeDPConnectedComponents,
    NaiveNodeDPConnectedComponents,
)
from repro.graphs.components import number_of_connected_components
from repro.graphs.generators import (
    grid_graph,
    planted_components,
    random_forest,
    random_geometric_graph,
    star_graph,
    with_hub,
)

from ._util import emit_table, reset_results

_TRIALS = 25
_EPSILON = 1.0


def _median_error(mechanism, graph, truth, rng, trials=_TRIALS):
    errors = [abs(mechanism.release(graph, rng) - truth) for _ in range(trials)]
    return float(np.median(errors))


def _run_comparison(rng):
    reset_results("E9")
    cases = [
        ("forest 100/25", random_forest(100, 25, rng)),
        ("planted 6x15", planted_components([15] * 6, 0.3, rng)),
        ("grid 8x8", grid_graph(8, 8)),
        ("geometric 120", random_geometric_graph(120, 0.08, rng)),
        ("hub graph (worst case)", with_hub(star_graph(60))),
    ]
    rows = []
    for name, graph in cases:
        n = graph.number_of_vertices()
        truth = number_of_connected_components(graph)
        paper = PrivateConnectedComponents(epsilon=_EPSILON)
        paper_errors = [
            abs(paper.release(graph, rng).value - truth) for _ in range(_TRIALS)
        ]
        paper_median = float(np.median(paper_errors))
        naive_median = _median_error(
            NaiveNodeDPConnectedComponents(epsilon=_EPSILON, n_max=n),
            graph, truth, rng,
        )
        edge_median = _median_error(
            EdgeDPConnectedComponents(epsilon=_EPSILON), graph, truth, rng
        )
        rows.append(
            [
                name,
                n,
                truth,
                edge_median,
                paper_median,
                naive_median,
                naive_median / max(paper_median, 1e-9),
            ]
        )
    emit_table(
        "E9",
        ["family", "n", "true f_cc", "edge-DP", "paper (node-DP)",
         "naive node-DP", "naive/paper"],
        rows,
        f"median |error| over {_TRIALS} trials, eps={_EPSILON}: "
        "node privacy at near edge-privacy accuracy",
    )
    return rows


def test_baseline_comparison(benchmark, rng):
    rows = benchmark.pedantic(_run_comparison, args=(rng,), rounds=1, iterations=1)
    structured = [r for r in rows if "hub" not in r[0]]
    # On every structured family the paper's algorithm beats naive
    # node-DP noise by at least 2x (typically much more).
    assert all(row[6] >= 2.0 for row in structured)
    # Edge-DP is (unsurprisingly) the most accurate: weaker privacy.
    assert all(row[3] <= row[4] + 1.0 for row in rows)


def _run_epsilon_sweep(rng):
    graph = random_forest(100, 25, rng)
    truth = number_of_connected_components(graph)
    rows = []
    paper = {}
    for epsilon in (0.25, 0.5, 1.0, 2.0, 4.0):
        estimator = PrivateConnectedComponents(epsilon=epsilon)
        errors = [
            abs(estimator.release(graph, rng).value - truth) for _ in range(_TRIALS)
        ]
        paper[epsilon] = float(np.median(errors))
        naive = _median_error(
            NaiveNodeDPConnectedComponents(epsilon=epsilon, n_max=100),
            graph, truth, rng,
        )
        rows.append([epsilon, paper[epsilon], naive])
    emit_table(
        "E9",
        ["epsilon", "paper median|err|", "naive median|err|"],
        rows,
        "epsilon sweep on forest 100/25",
    )
    return rows


def test_epsilon_sweep(benchmark, rng):
    rows = benchmark.pedantic(_run_epsilon_sweep, args=(rng,), rounds=1, iterations=1)
    # Error decreases with epsilon (compare extremes, noise-tolerant).
    assert rows[0][1] > rows[-1][1]
    assert all(row[2] > row[1] for row in rows)
