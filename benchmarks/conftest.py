"""Shared fixtures for the benchmark/experiment suite."""

from __future__ import annotations

import numpy as np
import pytest

# The shared "repro" hypothesis profile is registered in the repo-root
# conftest.py (selected via addopts in pyproject.toml).


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG so every experiment table is reproducible."""
    return np.random.default_rng(20230413)


@pytest.fixture(autouse=True)
def _record_peak_rss(request):
    """Stamp the process peak RSS into every benchmark's ``extra_info``.

    Gives the perf-trajectory BENCH_<sha>.json a memory axis for free:
    the recorded value is the process high-water mark after the
    benchmark ran (an upper bound on what the benchmark itself needed,
    exact for the largest benchmark in the session).
    """
    yield
    benchmark = request.node.funcargs.get("benchmark")
    if benchmark is not None:
        from ._util import peak_rss_bytes

        benchmark.extra_info["peak_rss_bytes"] = peak_rss_bytes()
