"""Shared fixtures for the benchmark/experiment suite."""

from __future__ import annotations

import numpy as np
import pytest

# The shared "repro" hypothesis profile is registered in the repo-root
# conftest.py (selected via addopts in pyproject.toml).


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG so every experiment table is reproducible."""
    return np.random.default_rng(20230413)
