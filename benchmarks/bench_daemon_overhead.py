"""E13 — Durable daemon serving overhead on the warm path.

The PR-6 tentpole wraps the amortized :class:`ReleaseSession` hot path
in a long-lived HTTP daemon that additionally pays, per release, one
fsync'd audit append plus one atomic account write.  This benchmark
pins that the durability tax stays bounded: after the first (cold)
request warms the extension table, the mean end-to-end latency of a
daemon release — HTTP framing, admission control, GEM + Laplace, audit
fsync, account rename — must stay under a wall-clock ceiling, and the
responses must carry exactly the budget arithmetic the in-process
accountant would.

The ceiling is deliberately generous (these are real fsyncs): locally
50 ms/request; CI relaxes via ``REPRO_BENCH_MAX_DAEMON_MS`` because
shared runners have unpredictable fsync latency.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
import urllib.request

from repro.graphs.generators import erdos_renyi_compact
from repro.graphs.io import write_edge_list
from repro.service.daemon import ReleaseDaemon

from ._util import emit_table, reset_results

_N = int(os.environ.get("REPRO_BENCH_DAEMON_N", "20000"))
_C = 0.35
_N_REQUESTS = 32
_EPSILON = 0.125
# Mean warm-request ceiling in milliseconds; CI overrides upward.
_MAX_MEAN_MS = float(os.environ.get("REPRO_BENCH_MAX_DAEMON_MS", "50.0"))


def _post_release(base: str, body: dict) -> dict:
    request = urllib.request.Request(
        f"{base}/v1/release",
        data=json.dumps(body).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        assert response.status == 200
        return json.loads(response.read())


def _run_experiment(rng):
    reset_results("E13")

    with tempfile.TemporaryDirectory(prefix="bench-daemon-") as root:
        graph_path = os.path.join(root, "bench.edges")
        graph = erdos_renyi_compact(_N, _C / _N, rng)
        write_edge_list(graph, graph_path)

        daemon = ReleaseDaemon(
            os.path.join(root, "state"),
            default_tenant_budget=_EPSILON * (_N_REQUESTS + 1),
        )
        with daemon.start_in_background() as handle:
            base = f"http://127.0.0.1:{handle.port}"

            # Cold request: pays the component split + extension table.
            cold_start = time.perf_counter()
            _post_release(base, {
                "tenant": "bench", "estimator": "cc",
                "epsilon": _EPSILON, "graph": graph_path, "seed": 0,
            })
            cold_time = time.perf_counter() - cold_start

            # Warm requests: GEM + Laplace + durable commit only.
            latencies = []
            for i in range(1, _N_REQUESTS + 1):
                name = ("cc", "sf")[i % 2]
                start = time.perf_counter()
                body = _post_release(base, {
                    "tenant": "bench", "estimator": name,
                    "epsilon": _EPSILON, "graph": graph_path, "seed": i,
                })
                latencies.append(time.perf_counter() - start)
                assert body["seq"] == i
            # The response budget arithmetic matches an exact ledger
            # sum (compensated accountant, not naive drift).
            spent = body["budget"]["spent"]
            exact = math.fsum([_EPSILON] * (_N_REQUESTS + 1))
            assert abs(spent - exact) <= 1e-12 * exact

        mean_ms = 1000.0 * sum(latencies) / len(latencies)
        p95_ms = 1000.0 * sorted(latencies)[
            max(0, int(0.95 * len(latencies)) - 1)
        ]
        rows = [[
            _N,
            graph.number_of_edges(),
            _N_REQUESTS,
            1000.0 * cold_time,
            mean_ms,
            p95_ms,
            1000.0 * cold_time / mean_ms,
        ]]
        emit_table(
            "E13",
            [
                "n",
                "m",
                "requests",
                "cold ms",
                "warm mean ms",
                "warm p95 ms",
                "cold/warm",
            ],
            rows,
            "durable daemon releases on one hot graph: HTTP + admission "
            "+ GEM/Laplace + audit fsync + account rename per request "
            f"(ceiling: mean <= {_MAX_MEAN_MS:g} ms)",
        )
        assert mean_ms <= _MAX_MEAN_MS, (
            f"warm daemon request mean {mean_ms:.1f} ms above the "
            f"{_MAX_MEAN_MS:g} ms ceiling"
        )
        return rows


def test_daemon_overhead(benchmark, rng):
    benchmark.pedantic(_run_experiment, args=(rng,), rounds=1, iterations=1)
