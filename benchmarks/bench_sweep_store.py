"""E10 — Sweep orchestration: resume throughput and store overhead.

Two claims about the `repro.experiments` layer, measured:

1. resuming a completed sweep is dominated by store reads, not by
   recomputation — the cached pass must beat the compute pass by at
   least ``REPRO_BENCH_MIN_CACHE_SPEEDUP`` (default 3x; CI relaxes it,
   the local bar is comfortably ~100x for Algorithm-1 cells);
2. the orchestration tax (expansion, hashing, atomic writes) per cell
   stays in the low-millisecond range, i.e. negligible against any real
   mechanism evaluation.
"""

from __future__ import annotations

import os
import time

from repro.experiments import (
    GraphGrid,
    ResultStore,
    SweepSpec,
    run_sweep,
)

from ._util import emit_table, reset_results

_REQUIRED_CACHE_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_CACHE_SPEEDUP", "3.0")
)


def _spec(n_cells_per_mech: int) -> SweepSpec:
    return SweepSpec(
        name="bench-sweep-store",
        description="store-overhead benchmark grid",
        graphs=(GraphGrid("er", (40,), (("c", 1.0),)),),
        epsilons=(0.5, 1.0),
        mechanisms=("private_cc",),
        replicates=n_cells_per_mech,
        n_trials=10,
        base_seed=77,
    )


def _run_experiment(tmp_root: str):
    reset_results("E10")
    spec = _spec(10)  # 2 epsilons x 10 replicates = 20 Algorithm-1 cells
    store = ResultStore(os.path.join(tmp_root, "store"))

    start = time.perf_counter()
    computed = run_sweep(spec, store)
    compute_seconds = time.perf_counter() - start
    assert computed.n_computed == spec.cell_count()

    start = time.perf_counter()
    cached = run_sweep(spec, store)
    cached_seconds = time.perf_counter() - start
    assert cached.n_computed == 0

    speedup = compute_seconds / cached_seconds
    cells = spec.cell_count()
    emit_table(
        "E10",
        ["cells", "compute s", "resume s", "per-cell resume ms", "speedup"],
        [
            [
                cells,
                compute_seconds,
                cached_seconds,
                1000.0 * cached_seconds / cells,
                speedup,
            ]
        ],
        "sweep compute pass vs fully-cached resume pass "
        f"(required speedup >= {_REQUIRED_CACHE_SPEEDUP:g}x)",
    )
    assert speedup >= _REQUIRED_CACHE_SPEEDUP, (
        f"cached resume only {speedup:.1f}x faster than compute; "
        f"bar is {_REQUIRED_CACHE_SPEEDUP:g}x"
    )
    return speedup


def test_sweep_store_resume_speedup(benchmark, tmp_path):
    benchmark.pedantic(
        _run_experiment, args=(str(tmp_path),), rounds=1, iterations=1
    )
