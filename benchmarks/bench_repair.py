"""E5 + F1 — Lemma 1.8 / Algorithm 3: local-repair construction.

Reproduces (i) the lemma as a success-rate table — whenever ``Δ > s(G)``
the construction must yield a spanning Δ-forest — and (ii) Figure 1's
before/after repair step as a deterministic trace on a configuration
that forces a repair.  Also reports the repair-count cost measure.
"""

from __future__ import annotations


from repro.graphs.forests import (
    forest_max_degree,
    is_spanning_forest_of,
    repair_spanning_forest,
)
from repro.graphs.generators import (
    barabasi_albert,
    complete_graph,
    erdos_renyi,
    random_geometric_graph,
)
from repro.graphs.stars import is_induced_star, star_number

from ._util import emit_table, reset_results


def _run_success_table(rng):
    reset_results("E5")
    rows = []
    cases = [
        ("G(40,.1)", lambda: erdos_renyi(40, 0.1, rng)),
        ("G(40,.3)", lambda: erdos_renyi(40, 0.3, rng)),
        ("RGG(60,.15)", lambda: random_geometric_graph(60, 0.15, rng)),
        ("BA(40,2)", lambda: barabasi_albert(40, 2, rng)),
        ("K12", lambda: complete_graph(12)),
    ]
    for name, make in cases:
        for _ in range(5):
            g = make()
            s = star_number(g)
            result = repair_spanning_forest(g, s + 1)
            assert result.forest is not None
            ok = (
                is_spanning_forest_of(result.forest, g)
                and forest_max_degree(result.forest) <= s + 1
            )
            rows.append(
                [
                    name,
                    g.number_of_vertices(),
                    g.number_of_edges(),
                    s,
                    s + 1,
                    ok,
                    result.repair_count,
                ]
            )
    emit_table(
        "E5",
        ["family", "n", "m", "s(G)", "Δ = s+1", "Δ-forest found", "repairs"],
        rows,
        "Lemma 1.8: with Δ = s(G)+1 the construction always succeeds",
    )
    return rows


def test_lemma_1_8_success(benchmark, rng):
    rows = benchmark.pedantic(_run_success_table, args=(rng,), rounds=1, iterations=1)
    assert all(row[5] for row in rows)


def _run_below_threshold(rng):
    """Below the guarantee (Δ ≤ s) the construction may fail, but a
    failure must come with a valid induced-Δ-star certificate."""
    outcomes = {"success": 0, "certified failure": 0}
    for _ in range(40):
        n = int(rng.integers(8, 25))
        g = erdos_renyi(n, float(rng.uniform(0.05, 0.5)), rng)
        s = star_number(g)
        if s < 2:
            continue
        delta = int(rng.integers(1, s + 1))  # delta <= s: no guarantee
        result = repair_spanning_forest(g, delta)
        if result.forest is not None:
            assert is_spanning_forest_of(result.forest, g)
            assert forest_max_degree(result.forest) <= delta
            outcomes["success"] += 1
        else:
            assert result.star is not None
            center, leaves = result.star
            assert len(leaves) == delta
            assert is_induced_star(g, center, leaves)
            outcomes["certified failure"] += 1
    emit_table(
        "E5",
        ["outcome", "count"],
        [[k, v] for k, v in outcomes.items()],
        "Δ <= s(G): opportunistic successes and certified failures",
    )
    return outcomes


def test_below_threshold_certificates(benchmark, rng):
    outcomes = benchmark.pedantic(
        _run_below_threshold, args=(rng,), rounds=1, iterations=1
    )
    assert sum(outcomes.values()) > 0


def _figure_1_trace():
    """F1: a deterministic configuration exhibiting the repair step.

    K4 with Δ = 2: inserting the last vertex pushes one vertex to degree
    Δ + 1, and since its forest-neighbors are adjacent in G the local
    repair of Figure 1 (replace (v_i, b) with (a, b)) fires exactly once
    before the construction finishes with a Hamiltonian path.
    """
    g = complete_graph(4)
    result = repair_spanning_forest(g, 2)
    rows = [[
        "K4, delta=2",
        result.forest is not None,
        forest_max_degree(result.forest) if result.forest else None,
        result.repair_count,
        sorted(result.forest.edges()) if result.forest else None,
    ]]
    emit_table(
        "E5",
        ["instance", "succeeded", "max degree", "repairs", "forest edges"],
        rows,
        "F1: local repair trace on the Figure 1 configuration (K4, Δ = 2)",
    )
    return result


def test_figure_1_trace(benchmark):
    result = benchmark.pedantic(_figure_1_trace, rounds=1, iterations=1)
    assert result.forest is not None
    assert forest_max_degree(result.forest) <= 2
    # The gadget genuinely exercises at least one local repair.
    assert result.repair_count >= 1
