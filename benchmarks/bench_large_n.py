"""E16 — Out-of-core serving at large n: memmap RSS gate + batched kernels.

Acceptance benchmark for the PR-9 tentpole, in two legs:

1. **Memmap RSS gate.**  One end-to-end cc+sf release at
   ``REPRO_BENCH_LARGE_N`` (default 1e6; the nightly/manual full-scale
   run sets 1e7) served from a memmap-backed ``.npz`` graph in a fresh
   subprocess.  The child's peak-RSS *delta* over its post-import
   baseline must stay below ``REPRO_BENCH_RSS_MULTIPLIER`` x the raw
   CSR byte size plus a fixed ``REPRO_BENCH_RSS_FLOOR_MB`` allowance.

   The multiplier is deliberately not 2x: a release cannot run in less
   than the resident CSR pages (memmap pages count toward RSS once
   touched) plus the O(n) derived arrays the extension engine needs
   (component labels, vertex/edge orderings, degree tables) plus the
   chunked batched-DP scratch — an honest floor of ~3x CSR.  The gate
   exists to catch regressions back to "materialise everything per
   component in Python lists", which is an order of magnitude, not a
   few percent.

2. **Batched-certificate speedup.**  At ``REPRO_BENCH_BATCH_N``
   (default 1e6) on a forest workload, evaluating the extension over a
   small power-of-two grid with the vectorised batched tree path must
   beat the legacy per-component Python loop by at least
   ``REPRO_BENCH_MIN_BATCH_SPEEDUP`` (default 5x), while releasing
   bit-identical values for every grid key.

Workload shape: a uniform random forest (``random_forest_compact``)
with average tree size ~200 for the RSS leg — many non-trivial tree
components, the exact shape the batched Algorithm-3 kernel targets —
and average tree size ~50 for the speedup leg, where legacy
per-component interpreter overhead dominates.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np

import repro
from repro.graphs.compact import forbid_object_coercion
from repro.graphs.generators import random_forest_compact
from repro.graphs.store import csr_nbytes, save_npz
from repro.core.extension import extension_for
from repro.lp.forest_core import clear_solve_cache

from ._util import emit_table, peak_rss_bytes, reset_results

_LARGE_N = int(float(os.environ.get("REPRO_BENCH_LARGE_N", "1000000")))
_BATCH_N = int(float(os.environ.get("REPRO_BENCH_BATCH_N", "1000000")))
_BASE_SEED = 20230808
# Peak-RSS budget: multiplier x raw CSR bytes + fixed floor.  The floor
# absorbs interpreter/session overhead that does not scale with n, so
# the CI run at n=1e6 is robust while the n=1e7 run is dominated by the
# multiplier term.
_RSS_MULTIPLIER = float(os.environ.get("REPRO_BENCH_RSS_MULTIPLIER", "4.0"))
_RSS_FLOOR_MB = float(os.environ.get("REPRO_BENCH_RSS_FLOOR_MB", "384"))
# Local acceptance bar is 5x; CI sets REPRO_BENCH_MIN_BATCH_SPEEDUP
# lower because shared runners add wall-clock jitter.
_REQUIRED_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_BATCH_SPEEDUP", "5.0")
)

# The child measures its own peak RSS before and after serving; ru_maxrss
# is a monotone high-water mark, so the delta bounds the serving cost.
_CHILD_SCRIPT = """\
import json, resource, sys, time

import numpy as np

from repro.graphs.store import open_npz
from repro.service import ReleaseSession


def _peak_rss():
    # VmHWM, not ru_maxrss: on Linux ru_maxrss survives execve (it lives
    # in the signal struct), so a child forked from a large parent would
    # inherit the parent's high-water mark and report a near-zero delta.
    # VmHWM belongs to the mm struct, which execve replaces.
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return int(peak)


path, fingerprint, seed = sys.argv[1], sys.argv[2], int(sys.argv[3])
baseline = _peak_rss()
start = time.perf_counter()
graph = open_npz(path, expected_fingerprint=fingerprint)
open_s = time.perf_counter() - start
session = ReleaseSession()
rng = np.random.default_rng(seed)
start = time.perf_counter()
cc = session.query("cc", epsilon=1.0, graph=graph, rng=rng).value
sf = session.query("sf", epsilon=1.0, graph=graph, rng=rng).value
release_s = time.perf_counter() - start
print(json.dumps({
    "baseline": baseline,
    "peak": _peak_rss(),
    "open_s": open_s,
    "release_s": release_s,
    "cc": cc,
    "sf": sf,
}))
"""


def _forest(n: int, avg_tree: int, rng: np.random.Generator):
    return random_forest_compact(n, max(n // avg_tree, 2), rng)


def _run_memmap_experiment(tmp_dir: str) -> dict:
    reset_results("E16")
    rng = np.random.default_rng(_BASE_SEED)
    graph = _forest(_LARGE_N, 200, rng)
    csr_bytes = csr_nbytes(graph)
    path = os.path.join(tmp_dir, "large.npz")
    save_npz(graph, path)
    fingerprint = graph.fingerprint()
    del graph

    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, path, fingerprint,
         str(_BASE_SEED)],
        env=env,
        capture_output=True,
        text=True,
        check=False,
    )
    assert proc.returncode == 0, (
        f"memmap serving child failed:\n{proc.stdout}\n{proc.stderr}"
    )
    stats = json.loads(proc.stdout.strip().splitlines()[-1])

    rss_delta = stats["peak"] - stats["baseline"]
    budget = _RSS_MULTIPLIER * csr_bytes + _RSS_FLOOR_MB * 2**20
    assert np.isfinite(stats["cc"]) and np.isfinite(stats["sf"]), (
        "end-to-end release produced non-finite values"
    )

    mib = 2.0**20
    rows = [
        [
            _LARGE_N,
            csr_bytes / mib,
            stats["open_s"],
            stats["release_s"],
            rss_delta / mib,
            budget / mib,
            rss_delta / csr_bytes,
        ]
    ]
    emit_table(
        "E16",
        [
            "n",
            "csr MiB",
            "open s",
            "cc+sf s",
            "peak-RSS delta MiB",
            "budget MiB",
            "delta/csr",
        ],
        rows,
        "one end-to-end cc+sf release from a memmapped .npz graph in a "
        f"fresh process (budget = {_RSS_MULTIPLIER:g}x CSR + "
        f"{_RSS_FLOOR_MB:g} MiB)",
    )

    assert rss_delta <= budget, (
        f"peak-RSS delta {rss_delta / mib:.0f} MiB exceeds the "
        f"{budget / mib:.0f} MiB out-of-core budget "
        f"({_RSS_MULTIPLIER:g}x CSR + {_RSS_FLOOR_MB:g} MiB)"
    )
    return stats


def _run_speedup_experiment() -> float:
    rng = np.random.default_rng(_BASE_SEED + 1)
    graph = _forest(_BATCH_N, 50, rng)
    grid = [1.0, 2.0, 4.0, 8.0]

    clear_solve_cache()
    with forbid_object_coercion():
        legacy_ext = extension_for(graph, batched_certificates=False)
        legacy_start = time.perf_counter()
        legacy_values = legacy_ext.values_for_grid(grid)
        legacy_time = time.perf_counter() - legacy_start

    clear_solve_cache()
    with forbid_object_coercion():
        batched_ext = extension_for(graph)
        batched_start = time.perf_counter()
        batched_values = batched_ext.values_for_grid(grid)
        batched_time = time.perf_counter() - batched_start

    # Bit-identity: the batched tree kernel may not change any released
    # float relative to the per-component loop.
    assert np.array_equal(np.asarray(legacy_values),
                          np.asarray(batched_values)), (
        "batched certificate path diverged from the per-component loop"
    )

    speedup = legacy_time / batched_time
    rows = [
        [
            _BATCH_N,
            graph.number_of_edges(),
            len(grid),
            legacy_time,
            batched_time,
            speedup,
        ]
    ]
    emit_table(
        "E16",
        ["n", "edges", "grid keys", "legacy s", "batched s", "speedup"],
        rows,
        "extension values over a power-of-two grid on a random forest: "
        "legacy per-component Python loop vs batched vectorised tree "
        f"kernel (required speedup >= {_REQUIRED_SPEEDUP:g}x)",
    )

    assert speedup >= _REQUIRED_SPEEDUP, (
        f"batched-certificate speedup {speedup:.1f}x below the "
        f"{_REQUIRED_SPEEDUP:g}x acceptance bar"
    )
    return speedup


def test_large_n_memmap_rss(benchmark, tmp_path):
    stats = benchmark.pedantic(
        _run_memmap_experiment, args=(str(tmp_path),), rounds=1, iterations=1
    )
    benchmark.extra_info["n"] = _LARGE_N
    benchmark.extra_info["child_peak_rss_bytes"] = stats["peak"]
    benchmark.extra_info["child_rss_delta_bytes"] = (
        stats["peak"] - stats["baseline"]
    )
    benchmark.extra_info["parent_peak_rss_bytes"] = peak_rss_bytes()


def test_batched_certificate_speedup(benchmark):
    speedup = benchmark.pedantic(
        _run_speedup_experiment, rounds=1, iterations=1
    )
    benchmark.extra_info["n"] = _BATCH_N
    benchmark.extra_info["speedup"] = speedup
