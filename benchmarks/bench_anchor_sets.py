"""E6 — Lemma 1.9 / Lemma 3.3(1): anchor sets of the extension family.

Regenerates the anchor-set claims as tables:

* whenever the graph has a spanning Δ-forest, ``f_Δ = f_sf`` exactly
  (Lemma 3.3, Item 1);
* whenever ``DS_fsf(G) ≤ Δ − 1`` (membership in the largest monotone
  anchor set ``S*_{Δ−1}``), ``f_Δ = f_sf`` (Lemma 1.9:
  ``S*_{Δ−1} ⊆ S_Δ``);
* the containment can be strict: graphs with ``DS ≥ Δ`` on which the
  extension is still exact.
"""

from __future__ import annotations


from repro.core.down_sensitivity import down_sensitivity_spanning_forest
from repro.core.extension import evaluate_lipschitz_extension
from repro.graphs.components import spanning_forest_size
from repro.graphs.forests import has_spanning_delta_forest_exact
from repro.graphs.generators import complete_bipartite_graph, erdos_renyi

from ._util import emit_table, reset_results


def _run_random_membership(rng):
    reset_results("E6")
    checked = 0
    lemma_3_3_hits = 0
    lemma_1_9_hits = 0
    strict_containment = 0
    for _ in range(150):
        n = int(rng.integers(3, 9))
        g = erdos_renyi(n, float(rng.uniform(0.1, 0.9)), rng)
        if g.is_empty():
            continue
        fsf = spanning_forest_size(g)
        ds = down_sensitivity_spanning_forest(g)
        delta = int(rng.integers(1, 6))
        value = evaluate_lipschitz_extension(g, delta)
        exact = abs(value - fsf) <= 1e-6
        checked += 1
        try:
            has_delta_forest = has_spanning_delta_forest_exact(g, delta)
        except ValueError:  # enumeration too large; claim untestable here
            has_delta_forest = False
        if has_delta_forest:
            lemma_3_3_hits += int(exact)
        else:
            lemma_3_3_hits += 1  # claim not applicable: count as pass
        if ds <= delta - 1:
            lemma_1_9_hits += int(exact)
        else:
            lemma_1_9_hits += 1
            if exact:
                strict_containment += 1
    rows = [[checked, lemma_3_3_hits, lemma_1_9_hits, strict_containment]]
    emit_table(
        "E6",
        ["graphs", "Lemma 3.3(1) holds", "Lemma 1.9 holds",
         "exact despite DS >= Δ (strict ⊂)"],
        rows,
        "anchor sets on random graphs: S*_{Δ-1} ⊆ S_Δ, often strictly",
    )
    return rows[0]


def test_anchor_set_containment(benchmark, rng):
    checked, l33, l19, strict = benchmark.pedantic(
        _run_random_membership, args=(rng,), rounds=1, iterations=1
    )
    assert l33 == checked
    assert l19 == checked
    # The strict-containment phenomenon (K_{2,3}-like graphs) appears.
    assert strict >= 1


def _run_k23_showcase():
    """K_{2,b}: DS_fsf = b grows without bound while Δ* stays at 2 or 3,
    so the extension becomes exact far below Δ = DS + 1 — the anchor set
    S_Δ strictly contains the largest monotone anchor set S*_{Δ−1}."""
    from repro.graphs.forests import min_spanning_forest_degree_exact

    rows = []
    for b in (3, 4, 5):
        g = complete_bipartite_graph(2, b)
        ds = down_sensitivity_spanning_forest(g)
        fsf = spanning_forest_size(g)
        delta_star = min_spanning_forest_degree_exact(g)
        value = evaluate_lipschitz_extension(g, delta_star)
        rows.append(
            [f"K_{{2,{b}}}", ds, delta_star, value, fsf,
             abs(value - fsf) <= 1e-6, delta_star < ds + 1]
        )
    emit_table(
        "E6",
        ["graph", "DS_fsf", "Δ*", "f_{Δ*}", "f_sf", "exact at Δ*",
         "Δ* < DS+1 (strict)"],
        rows,
        "K_{2,b}: exact at Δ* although DS = b (anchor sets beyond S*)",
    )
    return rows


def test_k23_showcase(benchmark):
    rows = benchmark.pedantic(_run_k23_showcase, rounds=1, iterations=1)
    assert all(row[5] for row in rows)
    assert all(row[6] for row in rows)
