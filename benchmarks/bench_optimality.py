"""E7 + F2 — Theorem 1.11: ℓ∞ optimality of the Lipschitz extension.

For each test graph we compute both sides of

    Err_G(f_Δ, f_sf) ≤ 2 · min_{f* ∈ F_{Δ−1}} Err_G(f*, f_sf) − 1

with the right-hand minimum *lower-bounded* by the poset LP of
:mod:`repro.core.optimal_extension` (so a pass is stronger than the
theorem).  The F2 section exhibits the Win-decomposition structure of
Lemma 5.2 on star-of-stars instances: removing the sub-hub set ``X``
shatters ``S`` into at least ``|X|(Δ−2)+2`` components.
"""

from __future__ import annotations


from repro.core.optimal_extension import check_theorem_1_11
from repro.graphs.components import number_of_connected_components
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    star_graph,
    star_of_stars,
)

from ._util import emit_table, reset_results


def _run_theorem_table(rng):
    reset_results("E7")
    instances = [
        ("star_3 (Δ=2)", star_graph(3), 2),
        ("star_4 (Δ=3)", star_graph(4), 3),
        ("star_5 (Δ=4)", star_graph(5), 4),
        ("K5 (Δ=2)", complete_graph(5), 2),
        ("cycle_6 (Δ=1)", cycle_graph(6), 1),
        ("star_of_stars_2x2 (Δ=2)", star_of_stars(2, 2), 2),
    ]
    for i in range(4):
        g = erdos_renyi(7, 0.4, rng)
        instances.append((f"G(7,.4) #{i} (Δ=2)", g, 2))
    rows = []
    for name, g, delta in instances:
        outcome = check_theorem_1_11(g, delta)
        rows.append(
            [
                name,
                outcome["err"],
                outcome["opt_lower_bound"],
                outcome["bound"],
                outcome["satisfied"],
            ]
        )
    emit_table(
        "E7",
        ["instance", "Err(f_Δ)", "opt (LP lower bd)", "2·opt − 1", "≤ bound"],
        rows,
        "Theorem 1.11: our extension is 2-competitive with the best "
        "(Δ−1)-Lipschitz function",
    )
    return rows


def test_theorem_1_11(benchmark, rng):
    rows = benchmark.pedantic(_run_theorem_table, args=(rng,), rounds=1, iterations=1)
    assert all(row[-1] for row in rows)
    # The (Δ+1)-star instances are tight: err == bound == 1.
    star_rows = [r for r in rows if r[0].startswith("star_") and "of" not in r[0]]
    for row in star_rows:
        assert abs(row[1] - 1.0) < 1e-5
        assert abs(row[3] - 1.0) < 1e-4


def _run_win_decomposition():
    """F2: the Lemma 5.1 structure on star-of-stars graphs.

    ``S`` = the whole graph (it has a spanning Δ-tree for Δ = branches),
    ``X`` = the set of sub-hubs; removing ``X`` leaves
    ``1 + branches·leaves`` isolated-ish pieces, certifying (Item 3)
    that no spanning Δ-forest exists for small Δ.
    """
    rows = []
    for branches, leaves in [(2, 3), (3, 3), (3, 4)]:
        g = star_of_stars(branches, leaves)
        sub_hubs = [v for v in g.vertices() if v != 0 and g.degree(v) > 1]
        remaining = g.induced_subgraph(
            v for v in g.vertices() if v not in set(sub_hubs)
        )
        shattered = number_of_connected_components(remaining)
        x_size = len(sub_hubs)
        # Win's condition: a spanning Δ-forest requires
        # c(S \ X) <= |X|(Δ-2) + 2  =>  Δ >= (c - 2)/|X| + 2.
        implied_delta = (shattered - 2) / x_size + 2
        rows.append(
            [
                f"star_of_stars({branches},{leaves})",
                x_size,
                shattered,
                implied_delta,
            ]
        )
    emit_table(
        "E7",
        ["instance", "|X| (sub-hubs)", "c(S \\ X)", "Win lower bound on Δ"],
        rows,
        "F2: Win decomposition (Lemma 5.1) on star-of-stars instances",
    )
    return rows


def test_win_decomposition(benchmark):
    rows = benchmark.pedantic(_run_win_decomposition, rounds=1, iterations=1)
    # Each instance certifies a non-trivial degree lower bound.
    assert all(row[3] > 2 for row in rows)
