"""E1 — Theorem 1.3: instance-based accuracy of the main algorithm.

Reproduces the paper's headline guarantee: on an n-vertex graph the
private spanning-forest estimate errs by at most ``Δ*·Õ(ln ln n / ε)``.
We sweep structured families whose Δ* we control, several ε, and report
measured error quantiles next to the explicit Theorem 1.3 reference
curve.  A budget-split ablation (GEM vs. noise fraction) covers the
design choice called out in DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithm import PrivateSpanningForestSize
from repro.core.bounds import theorem_1_3_bound
from repro.graphs.components import spanning_forest_size
from repro.graphs.forests import approx_min_degree_spanning_forest
from repro.graphs.generators import (
    caterpillar_graph,
    grid_graph,
    random_forest,
    random_geometric_graph,
    star_plus_isolated,
)

from ._util import emit_table, reset_results

_TRIALS = 20


def _families(rng):
    return [
        ("grid 8x8", grid_graph(8, 8)),
        ("forest n=120 t=30", random_forest(120, 30, rng)),
        ("geometric n=150 r=.1", random_geometric_graph(150, 0.1, rng)),
        ("caterpillar 20x4", caterpillar_graph(20, 4)),
        ("star25+isolated75", star_plus_isolated(25, 75)),
    ]


def _run_experiment(rng):
    reset_results("E1")
    rows = []
    for name, graph in _families(rng):
        n = graph.number_of_vertices()
        truth = spanning_forest_size(graph)
        _, delta_star_ub = approx_min_degree_spanning_forest(graph)
        for epsilon in (0.5, 1.0, 2.0):
            estimator = PrivateSpanningForestSize(epsilon=epsilon)
            errors = np.abs(
                [estimator.release(graph, rng).value - truth for _ in range(_TRIALS)]
            )
            bound = theorem_1_3_bound(n, epsilon, delta_star_ub)
            rows.append(
                [
                    name,
                    n,
                    epsilon,
                    delta_star_ub,
                    float(np.median(errors)),
                    float(np.quantile(errors, 0.9)),
                    bound,
                    bool(np.median(errors) <= bound),
                ]
            )
    emit_table(
        "E1",
        ["family", "n", "eps", "Δ* (ub)", "median|err|", "q90|err|",
         "thm1.3 bound", "within"],
        rows,
        "Theorem 1.3: measured error vs instance-based bound "
        f"({_TRIALS} trials)",
    )
    return rows


def test_theorem_1_3_accuracy(benchmark, rng):
    rows = benchmark.pedantic(_run_experiment, args=(rng,), rounds=1, iterations=1)
    # Shape assertions: every family/epsilon combination stays within the
    # explicit Theorem 1.3 envelope (constants are generous).
    assert all(row[-1] for row in rows)
    # Error decreases as epsilon grows, per family (allowing noise slack
    # by comparing eps=0.5 against eps=2.0 medians).
    by_family: dict[str, dict[float, float]] = {}
    for name, _n, eps, _d, median, *_rest in rows:
        by_family.setdefault(name, {})[eps] = median
    looser = sum(
        1 for name, vals in by_family.items() if vals[0.5] >= vals[2.0] * 0.8
    )
    assert looser >= len(by_family) - 1


def _run_budget_ablation(rng):
    graph = grid_graph(8, 8)
    truth = spanning_forest_size(graph)
    rows = []
    for fraction in (0.25, 0.5, 0.75):
        estimator = PrivateSpanningForestSize(epsilon=1.0, select_fraction=fraction)
        errors = np.abs(
            [estimator.release(graph, rng).value - truth for _ in range(_TRIALS)]
        )
        rows.append([fraction, float(np.median(errors)), float(errors.mean())])
    emit_table(
        "E1",
        ["GEM fraction", "median|err|", "mean|err|"],
        rows,
        "ablation: budget split between selection and noise (grid 8x8, eps=1)",
    )
    return rows


def test_budget_split_ablation(benchmark, rng):
    rows = benchmark.pedantic(_run_budget_ablation, args=(rng,), rounds=1, iterations=1)
    assert len(rows) == 3
    # All splits should be serviceable; none catastrophically worse than 10x.
    medians = [row[1] for row in rows]
    assert max(medians) <= 10 * max(min(medians), 1.0)
