"""E10 — Compact-native private pipeline: end-to-end release speedup.

Acceptance benchmark for the PR-3 tentpole: running the full Algorithm-1
pipeline (``PrivateConnectedComponents`` — GEM over the whole Δ-grid,
Lipschitz-extension evaluation, Laplace release) on an
``erdos_renyi_compact`` input at ``n = 10^5`` must be at least 5× faster
than the same release on the object-graph representation, release
*bit-identical* values for the same seed, and perform **zero**
compact→object coercions (hard-guarded via
:func:`repro.graphs.compact.forbid_object_coercion`).

The sparse regime ``np = c`` with ``c < 1`` matches the paper's
``Õ(log n / ε)`` analysis and keeps every component small enough that
both paths evaluate the same exact LP values; the measured advantage
(typically two orders of magnitude) comes from the shared vectorized
component pass versus the object path's per-component dictionary walks.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.algorithm import PrivateConnectedComponents
from repro.graphs.compact import forbid_object_coercion, object_coercion_count
from repro.graphs.generators import erdos_renyi_compact
from repro.lp.forest_core import clear_solve_cache

from ._util import emit_table, reset_results

_N = int(os.environ.get("REPRO_BENCH_PIPELINE_N", "100000"))
_C = 0.35
_EPSILON = 1.0
_RELEASE_SEED = 20230413
# Local acceptance bar is 5x (measured ~100-300x on an idle machine); CI
# sets REPRO_BENCH_MIN_PIPELINE_SPEEDUP lower because shared runners add
# wall-clock jitter that should not fail unrelated merges.
_REQUIRED_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_PIPELINE_SPEEDUP", "5.0")
)


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def _run_experiment(rng):
    reset_results("E10")

    generate_time, compact = _timed(lambda: erdos_renyi_compact(_N, _C / _N, rng))
    reference = compact.to_graph()

    # Compact-native release: hard-guarded against any object coercion.
    # The shared LP-core memo is cleared before each leg so both runs
    # are genuinely cold — neither representation may ride on component
    # solves populated by the other.
    clear_solve_cache()
    coercions_before = object_coercion_count()
    with forbid_object_coercion():
        compact_time, compact_release = _timed(
            lambda: PrivateConnectedComponents(epsilon=_EPSILON).release(
                compact, np.random.default_rng(_RELEASE_SEED)
            )
        )
    assert object_coercion_count() == coercions_before, (
        "compact pipeline performed an object-graph coercion"
    )

    clear_solve_cache()
    object_time, object_release = _timed(
        lambda: PrivateConnectedComponents(epsilon=_EPSILON).release(
            reference, np.random.default_rng(_RELEASE_SEED)
        )
    )

    # Differential agreement at scale: same seed, same released floats.
    assert compact_release.value == object_release.value, (
        compact_release.value,
        object_release.value,
    )
    assert (
        compact_release.spanning_forest.delta_hat
        == object_release.spanning_forest.delta_hat
    )

    speedup = object_time / compact_time
    rows = [
        [
            _N,
            compact.number_of_edges(),
            compact_release.true_value,
            f"{compact_release.value:.2f}",
            object_time,
            compact_time,
            speedup,
        ]
    ]
    emit_table(
        "E10",
        ["n", "m", "f_cc", "release", "object s", "compact s", "speedup"],
        rows,
        f"G(n, {_C:g}/n) end-to-end PrivateConnectedComponents: object vs "
        f"compact-native pipeline (required speedup >= {_REQUIRED_SPEEDUP:g}x)",
    )
    emit_table(
        "E10",
        ["stage", "seconds"],
        [
            [f"compact generate n={_N}", generate_time],
            ["compact release (cold extension)", compact_time],
            ["object release (cold extension)", object_time],
        ],
        "supporting stage timings",
    )

    assert speedup >= _REQUIRED_SPEEDUP, (
        f"compact pipeline speedup {speedup:.1f}x below the "
        f"{_REQUIRED_SPEEDUP:g}x acceptance bar"
    )
    return rows


def test_private_pipeline_speedup(benchmark, rng):
    benchmark.pedantic(_run_experiment, args=(rng,), rounds=1, iterations=1)
