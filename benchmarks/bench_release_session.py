"""E11 — Amortized release-session serving: hot-graph query speedup.

Acceptance benchmark for the PR-4 tentpole: a
:class:`~repro.service.ReleaseSession` answering 32 mixed
``(estimator, epsilon)`` queries on one hot ``n = 10^5`` compact graph
must be at least 5× faster than the same 32 queries released cold
(fresh estimator + fresh extension per query, shared LP memo cleared),
while

* releasing **bit-identical** values for identical per-query RNG
  streams (extension values are deterministic, so sharing the warm
  table cannot change any released float), and
* performing **zero** compact→object coercions on the warm path
  (hard-guarded via ``forbid_object_coercion``).

The workload alternates Algorithm-1 ``cc`` and ``sf`` queries over a
small epsilon menu — the mixed-tenant shape a serving layer sees.  The
amortization win is structural: the cold path re-runs the component
decomposition and the whole-grid extension pass per query; the session
pays them once, so the k-th hot query costs only GEM selection plus one
Laplace draw.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.estimators import create
from repro.graphs.compact import forbid_object_coercion, object_coercion_count
from repro.graphs.generators import erdos_renyi_compact
from repro.lp.forest_core import clear_solve_cache
from repro.service import ReleaseSession

from ._util import emit_table, reset_results

_N = int(os.environ.get("REPRO_BENCH_SESSION_N", "100000"))
_C = 0.35
_N_QUERIES = 32
_BASE_SEED = 20230413
# Local acceptance bar is 5x; CI sets REPRO_BENCH_MIN_SESSION_SPEEDUP
# lower because shared runners add wall-clock jitter.
_REQUIRED_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_MIN_SESSION_SPEEDUP", "5.0")
)

# 32 mixed (estimator, epsilon) queries: both Algorithm-1 statistics
# across a small epsilon menu, interleaved.
_QUERIES = [
    (("cc", "sf")[i % 2], (0.25, 0.5, 1.0, 2.0)[(i // 2) % 4])
    for i in range(_N_QUERIES)
]


def _query_rng(i: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence(_BASE_SEED, spawn_key=(i,))
    )


def _run_experiment(rng):
    reset_results("E11")

    graph = erdos_renyi_compact(_N, _C / _N, rng)

    # Cold leg: every query builds a fresh estimator and extension; the
    # process-wide LP memo is cleared per query so no kernel work leaks
    # between queries.
    cold_values = []
    clear_solve_cache()
    cold_start = time.perf_counter()
    for i, (name, epsilon) in enumerate(_QUERIES):
        clear_solve_cache()
        release = create(name, epsilon=epsilon).release(graph, _query_rng(i))
        cold_values.append(release.value)
    cold_time = time.perf_counter() - cold_start

    # Warm leg: one session, same queries, same RNG streams — guarded
    # against any object-graph fallback.
    session = ReleaseSession()
    warm_values = []
    clear_solve_cache()
    coercions_before = object_coercion_count()
    with forbid_object_coercion():
        warm_start = time.perf_counter()
        for i, (name, epsilon) in enumerate(_QUERIES):
            release = session.query(
                name, epsilon=epsilon, graph=graph, rng=_query_rng(i)
            )
            warm_values.append(release.value)
        warm_time = time.perf_counter() - warm_start
    assert object_coercion_count() == coercions_before, (
        "session serving performed an object-graph coercion"
    )

    # Bit-identity: the warm table changes nothing about the values.
    assert warm_values == cold_values, (
        "session releases diverged from cold releases"
    )
    assert session.stats.graph_misses == 1
    assert session.stats.graph_hits == _N_QUERIES - 1

    speedup = cold_time / warm_time
    rows = [
        [
            _N,
            graph.number_of_edges(),
            _N_QUERIES,
            cold_time,
            warm_time,
            cold_time / _N_QUERIES,
            warm_time / _N_QUERIES,
            speedup,
        ]
    ]
    emit_table(
        "E11",
        [
            "n",
            "m",
            "queries",
            "cold s",
            "session s",
            "cold s/q",
            "session s/q",
            "speedup",
        ],
        rows,
        f"32 mixed (estimator, eps) queries on one hot G(n, {_C:g}/n): "
        f"cold releases vs ReleaseSession "
        f"(required speedup >= {_REQUIRED_SPEEDUP:g}x)",
    )

    assert speedup >= _REQUIRED_SPEEDUP, (
        f"session speedup {speedup:.1f}x below the "
        f"{_REQUIRED_SPEEDUP:g}x acceptance bar"
    )
    return rows


def test_release_session_speedup(benchmark, rng):
    benchmark.pedantic(_run_experiment, args=(rng,), rounds=1, iterations=1)
