"""E9 — Array-backed kernel: f_cc speedup on large Erdős–Rényi graphs.

Acceptance benchmark for the CompactGraph fast path: on G(n, c/n) with
``n = 10^5`` the CSR + array-union-find ``f_cc`` must be at least 5×
faster than the reference object-graph BFS.  Also reports the spanning
forest kernel and the end-to-end vectorized generator, whose advantage
is far larger (the object generator walks pair indices in O(n·m)).
"""

from __future__ import annotations

import os
import time

from repro.graphs.compact import CompactGraph
from repro.graphs.components import number_of_connected_components
from repro.graphs.generators import erdos_renyi, erdos_renyi_compact

from ._util import emit_table, reset_results

_N = 100_000
_C = 2.0
# Local acceptance bar is 5x (measured ~10x on an idle machine); CI sets
# REPRO_BENCH_MIN_SPEEDUP lower because shared runners add wall-clock
# jitter that should not fail unrelated merges.
_REQUIRED_SPEEDUP = float(os.environ.get("REPRO_BENCH_MIN_SPEEDUP", "5.0"))


def _best_of(repeats, fn):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _run_experiment(rng):
    reset_results("E9")
    rows = []

    generate_time, compact = _best_of(
        1, lambda: erdos_renyi_compact(_N, _C / _N, rng)
    )
    reference = compact.to_graph()

    ref_time, ref_cc = _best_of(
        3, lambda: number_of_connected_components(reference)
    )
    # A fresh CompactGraph per round so cached component labels never
    # flatter the kernel timing.
    compact_time, compact_cc = _best_of(
        3,
        lambda: number_of_connected_components(
            CompactGraph(compact.indptr, compact.indices)
        ),
    )
    assert compact_cc == ref_cc
    speedup = ref_time / compact_time
    rows.append(
        [
            _N,
            compact.number_of_edges(),
            ref_cc,
            ref_time,
            compact_time,
            speedup,
        ]
    )

    forest_time, forest = _best_of(
        3, lambda: CompactGraph(compact.indptr, compact.indices).spanning_forest()
    )
    assert forest.number_of_edges() == _N - ref_cc

    # Generator comparison at a size the object generator can stomach.
    small_n = 20_000
    object_gen_time, _ = _best_of(
        1, lambda: erdos_renyi(small_n, _C / small_n, rng)
    )
    compact_gen_time, _ = _best_of(
        1, lambda: erdos_renyi_compact(small_n, _C / small_n, rng)
    )

    emit_table(
        "E9",
        ["n", "m", "f_cc", "ref f_cc s", "compact f_cc s", "speedup"],
        rows,
        f"G(n, {_C:g}/n): object-graph BFS vs CSR array union-find "
        f"(required speedup >= {_REQUIRED_SPEEDUP:g}x)",
    )
    emit_table(
        "E9",
        ["kernel", "seconds"],
        [
            [f"compact generate n={_N}", generate_time],
            [f"compact spanning forest n={_N}", forest_time],
            [f"object generate n={small_n}", object_gen_time],
            [f"compact generate n={small_n}", compact_gen_time],
        ],
        "supporting kernel timings",
    )

    assert speedup >= _REQUIRED_SPEEDUP, (
        f"compact f_cc speedup {speedup:.1f}x below the "
        f"{_REQUIRED_SPEEDUP:g}x acceptance bar"
    )
    return rows


def test_compact_kernel_speedup(benchmark, rng):
    benchmark.pedantic(_run_experiment, args=(rng,), rounds=1, iterations=1)
