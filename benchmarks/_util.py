"""Shared helpers for the experiment benchmarks.

Each benchmark regenerates one experiment from DESIGN.md's index (the
paper has no empirical tables, so the experiments instantiate its
quantitative theorems and Section 1.1.4 corollaries).  Tables are
printed (visible with ``pytest -s``) *and* written to
``benchmarks/results/<experiment>.txt`` so the artifacts survive capture.
"""

from __future__ import annotations

import os
import resource
import sys

from repro.analysis.tables import format_table

_RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def peak_rss_bytes() -> int:
    """Peak resident set size of this process so far, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; the value is
    a high-water mark, so deltas between two calls bound the additional
    memory a workload touched.  Recorded into every benchmark's
    ``extra_info`` (see ``conftest.py``) so the perf-trajectory JSON
    carries a memory axis alongside the timing one.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform != "darwin":
        peak *= 1024
    return int(peak)


def emit_table(
    experiment_id: str,
    headers: list[str],
    rows: list[list],
    title: str,
) -> str:
    """Format, print, and persist one experiment table."""
    table = format_table(headers, rows, title=f"[{experiment_id}] {title}")
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"{experiment_id}.txt")
    mode = "a" if os.path.exists(path) else "w"
    with open(path, mode, encoding="utf-8") as handle:
        handle.write(table + "\n\n")
    print()
    print(table)
    return table


def reset_results(experiment_id: str) -> None:
    """Truncate a previous run's artifact for this experiment."""
    os.makedirs(_RESULTS_DIR, exist_ok=True)
    path = os.path.join(_RESULTS_DIR, f"{experiment_id}.txt")
    with open(path, "w", encoding="utf-8"):
        pass
